//! Compiled artifacts and the session/job layer: compile a plan once,
//! run millions of shots many times.
//!
//! Context-aware compilation is deterministic given the schedule,
//! device calibration, noise configuration, and seed — so the
//! expensive planning work (timeline segmentation, reference tableau
//! run, batch-program emission) is a pure function of a structural
//! key. This module makes the compiled result a first-class value:
//!
//! * [`CompiledCircuit`] — an owned, `Send + Sync` bundle of the
//!   scheduled circuit, the shared noise-timeline [`ExecutionPlan`],
//!   the resolved engine, and the precompiled frame programs, with a
//!   structural [`CacheKey`]. Running it never replans; results are
//!   bit-identical to the one-shot [`Simulator`] entry points at the
//!   same seed, for any shot and worker count.
//! * [`Session`] — a simulator plus a two-level LRU plan cache and a
//!   job API. Level one caches finished [`CompiledCircuit`]s per
//!   `(circuit, seed)`; level two caches the seed-*independent*
//!   [`ExecutionPlan`] per circuit, so re-seeded submissions of one
//!   circuit (twirl averaging, paired PEC estimates) skip timeline
//!   segmentation even on level-one misses. [`Session::submit`] fans
//!   independent jobs out across worker threads at *job* granularity
//!   (twirl ensembles run concurrently) while shot-level chunking
//!   stays inside each job. Results are deterministic regardless of
//!   cache hits, eviction history, or worker count. The env toggle
//!   `CA_SIM_PLAN_CACHE=0` disables caching (CI runs the equivalence
//!   suites both ways).
//! * [`CompiledCircuit::redress`] / [`Job::with_dressing`] — the
//!   twirl-ensemble fast path: twirl instances of one schedule
//!   differ only in which merged Pauli occupies each twirl slot
//!   (merged gates are zero-width, error-free, and Stark-invisible),
//!   so every instance provably shares the base's timeline. An
//!   instance is derived by substituting those Paulis and rebuilding
//!   only the frame program and reference run over the *shared*
//!   `Arc<ExecutionPlan>` — the pass pipeline and segmentation are
//!   never paid again — and is bit-identical to compiling the
//!   dressed circuit from scratch.

use crate::cancel::CancelToken;
use crate::engine::{check_gate_arities, Engine, DENSE_MAX_QUBITS};
use crate::error::SimError;
use crate::executor::Simulator;
use crate::frame_batch::BatchPlan;
use crate::insert::{InsertionSet, PauliInsertion};
use crate::pauli_frame::FramePlan;
use crate::plan::{map_batches, ExecutionPlan};
use crate::result::{PauliFlips, RunResult};
use ca_circuit::pauli::Pauli;
use ca_circuit::{Fnv, Gate, PauliString, ScheduledCircuit};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Structural identity of a compiled artifact: circuit structure ⊕
/// device fingerprint ⊕ noise switches ⊕ engine policy ⊕ seed. Equal
/// keys mean "the same plan up to 64-bit hash collisions"; the cache
/// additionally verifies circuit equality on every hit, so a
/// collision costs a recompile, never a wrong plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

/// The engine a compiled circuit resolved to, with its precompiled
/// program.
enum CompiledBackend {
    /// Dense statevector: the timeline plan is the whole program.
    Dense,
    /// Serial stabilizer/Pauli-frame program.
    Serial(FramePlan),
    /// Bit-parallel batched frame program (contains the serial
    /// [`FramePlan`] it was compiled from).
    Batch(BatchPlan),
}

/// An owned, hashable, reusable compiled execution artifact.
///
/// `Send + Sync`: safe to cache in a [`Session`], share behind an
/// [`Arc`], and run from many threads at once. All run methods take
/// `&self` and are bit-identical to the corresponding one-shot
/// [`Simulator`] calls with the same circuit and seed, for any shot
/// count and worker count.
pub struct CompiledCircuit {
    sim: Simulator,
    sc: Arc<ScheduledCircuit>,
    plan: Arc<ExecutionPlan>,
    backend: CompiledBackend,
    key: CacheKey,
    seed: u64,
}

impl std::fmt::Debug for CompiledCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledCircuit")
            .field("engine", &self.engine_name())
            .field("qubits", &self.sc.num_qubits)
            .field("items", &self.sc.items.len())
            .field("seed", &self.seed)
            .field("key", &self.key)
            .finish()
    }
}

fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    fn _check() {
        _assert_send_sync::<CompiledCircuit>();
        _assert_send_sync::<Session>();
    }
};

impl CompiledCircuit {
    /// The structural cache key this artifact was compiled under.
    pub fn key(&self) -> CacheKey {
        self.key
    }

    /// The seed fixed at compile time: it seeds the reference tableau
    /// run and every shot's noise stream, so repeated runs (with
    /// different insertion sets, shot counts, or worker counts) stay
    /// shot-wise paired.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled circuit this artifact executes.
    pub fn circuit(&self) -> &ScheduledCircuit {
        &self.sc
    }

    /// Name of the engine the artifact resolved to.
    pub fn engine_name(&self) -> &'static str {
        match self.backend {
            CompiledBackend::Dense => "statevector",
            CompiledBackend::Serial(_) => "stabilizer",
            CompiledBackend::Batch(_) => "frame-batch",
        }
    }

    /// Validates a raw insertion list against this artifact's circuit.
    pub fn insertions(&self, list: &[PauliInsertion]) -> Result<InsertionSet, SimError> {
        InsertionSet::build(&self.sc, list)
    }

    /// Shot-sampled classical counts without recompiling.
    pub fn run_counts(
        &self,
        shots: usize,
        ins: &InsertionSet,
        workers: Option<usize>,
    ) -> Result<RunResult, SimError> {
        self.run_counts_cancel(shots, ins, workers, None)
    }

    /// [`Self::run_counts`] with a cooperative [`CancelToken`],
    /// polled at shot-chunk / batch-strip boundaries: a cancelled or
    /// deadline-expired token aborts with [`SimError::Cancelled`] /
    /// [`SimError::DeadlineExceeded`] and no partial result.
    pub fn run_counts_cancel(
        &self,
        shots: usize,
        ins: &InsertionSet,
        workers: Option<usize>,
        cancel: Option<&CancelToken>,
    ) -> Result<RunResult, SimError> {
        match &self.backend {
            CompiledBackend::Dense => {
                if !ins.is_empty() {
                    return Err(SimError::UnsupportedOnEngine {
                        engine: "statevector",
                        operation: "per-shot Pauli insertions",
                    });
                }
                self.sim
                    .run_counts_dense_plan(&self.plan, shots, self.seed, cancel)
            }
            CompiledBackend::Serial(frame) => frame.counts(
                &self.sim,
                ins,
                crate::plan::ShotParams {
                    shots,
                    seed: self.seed,
                    workers,
                    cancel,
                },
            ),
            CompiledBackend::Batch(batch) => batch.counts(
                &self.sim,
                ins,
                crate::plan::ShotParams {
                    shots,
                    seed: self.seed,
                    workers,
                    cancel,
                },
            ),
        }
    }

    /// Frame- (or trajectory-) averaged Pauli expectations without
    /// recompiling.
    pub fn expect_paulis(
        &self,
        paulis: &[PauliString],
        shots: usize,
        ins: &InsertionSet,
        workers: Option<usize>,
    ) -> Result<Vec<f64>, SimError> {
        self.expect_paulis_cancel(paulis, shots, ins, workers, None)
    }

    /// [`Self::expect_paulis`] with a cooperative [`CancelToken`]
    /// (see [`Self::run_counts_cancel`]).
    pub fn expect_paulis_cancel(
        &self,
        paulis: &[PauliString],
        shots: usize,
        ins: &InsertionSet,
        workers: Option<usize>,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<f64>, SimError> {
        match &self.backend {
            CompiledBackend::Dense => {
                if !ins.is_empty() {
                    return Err(SimError::UnsupportedOnEngine {
                        engine: "statevector",
                        operation: "per-shot Pauli insertions",
                    });
                }
                self.sim
                    .expect_paulis_dense_plan(&self.plan, paulis, shots, self.seed, cancel)
            }
            CompiledBackend::Serial(frame) => frame.expectations(
                &self.sim,
                paulis,
                ins,
                crate::plan::ShotParams {
                    shots,
                    seed: self.seed,
                    workers,
                    cancel,
                },
            ),
            CompiledBackend::Batch(batch) => batch.expectations(
                &self.sim,
                paulis,
                ins,
                crate::plan::ShotParams {
                    shots,
                    seed: self.seed,
                    workers,
                    cancel,
                },
            ),
        }
    }

    /// Per-shot ±1 outcomes (sign-resolved expectations — the PEC
    /// estimator input) without recompiling. Frame engines only.
    pub fn expect_flips(
        &self,
        paulis: &[PauliString],
        shots: usize,
        ins: &InsertionSet,
        workers: Option<usize>,
    ) -> Result<PauliFlips, SimError> {
        self.expect_flips_cancel(paulis, shots, ins, workers, None)
    }

    /// [`Self::expect_flips`] with a cooperative [`CancelToken`]
    /// (see [`Self::run_counts_cancel`]).
    pub fn expect_flips_cancel(
        &self,
        paulis: &[PauliString],
        shots: usize,
        ins: &InsertionSet,
        workers: Option<usize>,
        cancel: Option<&CancelToken>,
    ) -> Result<PauliFlips, SimError> {
        match &self.backend {
            CompiledBackend::Dense => Err(SimError::UnsupportedOnEngine {
                engine: "statevector",
                operation: "per-shot sign-resolved outcomes",
            }),
            CompiledBackend::Serial(frame) => frame.flips(
                &self.sim,
                paulis,
                ins,
                crate::plan::ShotParams {
                    shots,
                    seed: self.seed,
                    workers,
                    cancel,
                },
            ),
            CompiledBackend::Batch(batch) => batch.flips(
                &self.sim,
                paulis,
                ins,
                crate::plan::ShotParams {
                    shots,
                    seed: self.seed,
                    workers,
                    cancel,
                },
            ),
        }
    }

    /// Derives a sibling artifact for another twirl instance of the
    /// same schedule: substitutes `dressing`'s Paulis into the merged
    /// twirl slots and rebuilds the frame program and reference run
    /// with `seed`, **sharing** the timeline [`ExecutionPlan`] — the
    /// pass pipeline and segment construction are not repeated.
    /// Merged slots are zero-width and error-free, so the timeline is
    /// provably identical across instances; results are bit-identical
    /// to compiling the dressed circuit from scratch.
    ///
    /// Fails on dense artifacts (the dense engine replays exact
    /// unitaries from the plan's own circuit — a dressed instance
    /// must compile independently) and on any substitution that is
    /// not a Pauli into a merged single-qubit Pauli slot.
    pub fn redress(
        &self,
        dressing: &[(usize, Pauli)],
        seed: u64,
    ) -> Result<CompiledCircuit, SimError> {
        if matches!(self.backend, CompiledBackend::Dense) {
            return Err(SimError::InvalidDressing {
                item: dressing.first().map_or(0, |d| d.0),
                reason: "dense artifacts cannot be re-dressed; compile the instance",
            });
        }
        let sc = Arc::new(apply_dressing(&self.sc, dressing)?);
        let key = cache_key(sim_fingerprint(&self.sim), &sc, seed);
        self.sim.compile_with(sc, self.plan.clone(), seed, key)
    }
}

/// Applies a twirl dressing to a copy of `base`, validating that
/// every target is a merged single-qubit Pauli slot.
fn apply_dressing(
    base: &ScheduledCircuit,
    dressing: &[(usize, Pauli)],
) -> Result<ScheduledCircuit, SimError> {
    let mut sc = base.clone();
    for &(item, pauli) in dressing {
        let Some(si) = sc.items.get_mut(item) else {
            return Err(SimError::InvalidDressing {
                item,
                reason: "target item index out of range",
            });
        };
        let instr = &mut si.instruction;
        let is_slot = instr.merged
            && instr.qubits.len() == 1
            && instr.condition.is_none()
            && matches!(instr.gate, Gate::I | Gate::X | Gate::Y | Gate::Z);
        if !is_slot {
            return Err(SimError::InvalidDressing {
                item,
                reason: "target item is not a merged single-qubit Pauli slot",
            });
        }
        instr.gate = pauli.gate();
    }
    Ok(sc)
}

/// Renders a caught panic payload for [`SimError::JobPanicked`]
/// (`panic!` carries `&str` or `String` in practice; anything else
/// is reported generically).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fingerprint of everything except the circuit and seed: device,
/// noise switches, engine policy, seed schedule. Computed once per
/// [`Session`].
fn sim_fingerprint(sim: &Simulator) -> u64 {
    let mut h = Fnv::new();
    h.u64(sim.device.fingerprint());
    h.str(sim.schedule.name());
    let c = &sim.config;
    for (i, b) in [
        c.zz_crosstalk,
        c.stark,
        c.charge_parity,
        c.quasistatic,
        c.decoherence,
        c.gate_error,
        c.readout_error,
    ]
    .into_iter()
    .enumerate()
    {
        h.u64(((i as u64) << 1) | b as u64);
    }
    h.str(match sim.engine {
        Engine::Auto => "auto",
        Engine::Statevector => "statevector",
        Engine::Stabilizer => "stabilizer",
        Engine::FrameBatch => "frame-batch",
    });
    h.finish()
}

/// Combines the session fingerprint, circuit structure, and seed.
fn cache_key(sim_fp: u64, sc: &ScheduledCircuit, seed: u64) -> CacheKey {
    let mut h = Fnv::new();
    h.u64(sim_fp);
    h.u64(sc.structural_hash());
    h.u64(seed);
    CacheKey(h.finish())
}

impl Simulator {
    /// Compiles `sc` into an owned, reusable [`CompiledCircuit`]:
    /// resolves the engine per the simulator's [`Engine`] policy,
    /// builds the timeline plan, and precompiles the frame programs.
    /// The uncached single-compile entry point — sessions add the LRU
    /// cache on top.
    pub fn compile(&self, sc: &ScheduledCircuit, seed: u64) -> Result<CompiledCircuit, SimError> {
        let key = cache_key(sim_fingerprint(self), sc, seed);
        let sc = Arc::new(sc.clone());
        let plan = Arc::new(ExecutionPlan::build_arc(
            sc.clone(),
            &self.device,
            &self.config,
        )?);
        self.compile_with(sc, plan, seed, key)
    }

    /// Assembles a [`CompiledCircuit`] over a prebuilt timeline plan.
    /// For frame backends, `plan.sc` may differ from `sc` at merged
    /// single-qubit Pauli slots (the re-dressed-twirl contract: the
    /// timeline is identical there); the dense backend replays exact
    /// unitaries from `plan.sc`, so it requires `plan.sc == sc` and
    /// gets a fresh plan from the caller otherwise.
    fn compile_with(
        &self,
        sc: Arc<ScheduledCircuit>,
        plan: Arc<ExecutionPlan>,
        seed: u64,
        key: CacheKey,
    ) -> Result<CompiledCircuit, SimError> {
        let _s = ca_obs::span("sim.compile", "artifact");
        ca_obs::counter_add("sim.compiles", 1);
        let engine = self.engine_for(&sc)?.name();
        let backend = match engine {
            "statevector" => {
                check_gate_arities(&sc)?;
                if sc.num_qubits > DENSE_MAX_QUBITS {
                    return Err(SimError::DenseCapExceeded {
                        qubits: sc.num_qubits,
                        max: DENSE_MAX_QUBITS,
                    });
                }
                debug_assert!(
                    *plan.sc == *sc,
                    "dense backends replay unitaries from the plan's circuit"
                );
                CompiledBackend::Dense
            }
            "stabilizer" => CompiledBackend::Serial(FramePlan::build_with_plan(
                sc.clone(),
                plan.clone(),
                seed,
                self.schedule,
            )?),
            _ => CompiledBackend::Batch(BatchPlan::from_frame(
                self,
                FramePlan::build_with_plan(sc.clone(), plan.clone(), seed, self.schedule)?,
            )),
        };
        Ok(CompiledCircuit {
            sim: self.clone(),
            sc,
            plan,
            backend,
            key,
            seed,
        })
    }
}

/// One unit of work for [`Session::submit`].
#[derive(Clone, Debug)]
pub struct Job {
    /// The (base) scheduled circuit to execute.
    pub circuit: Arc<ScheduledCircuit>,
    /// Optional twirl dressing: merged-slot Pauli substitutions
    /// applied via the shared-plan fast path
    /// ([`CompiledCircuit::redress`]).
    pub dressing: Option<Vec<(usize, Pauli)>>,
    /// Per-shot Pauli insertions (PEC); empty for plain runs.
    pub insertions: Vec<PauliInsertion>,
    /// What to measure.
    pub request: JobRequest,
    /// Shots.
    pub shots: usize,
    /// Seed for the reference run and every shot's noise stream.
    pub seed: u64,
    /// Cooperative cancellation handle (see [`Job::with_cancel`]).
    /// Cloning the job shares the token: cancelling one clone cancels
    /// all of them.
    pub cancel: Option<CancelToken>,
    /// Relative deadline, armed when the job is submitted (see
    /// [`Job::with_deadline`]) — queue wait counts against it.
    pub deadline: Option<std::time::Duration>,
}

/// What a [`Job`] measures.
#[derive(Clone, Debug)]
pub enum JobRequest {
    /// Classical-bit counts.
    Counts,
    /// Averaged Pauli expectations.
    Expect(Vec<PauliString>),
    /// Per-shot ±1 outcomes (frame engines only).
    Flips(Vec<PauliString>),
}

/// A [`Job`]'s result.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutput {
    /// Classical-bit counts.
    Counts(RunResult),
    /// Averaged Pauli expectations.
    Expect(Vec<f64>),
    /// Per-shot ±1 outcomes.
    Flips(PauliFlips),
}

impl JobOutput {
    /// The expectation vector, when the job requested one.
    pub fn expectations(&self) -> Option<&[f64]> {
        match self {
            JobOutput::Expect(v) => Some(v),
            _ => None,
        }
    }
}

impl Job {
    /// An expectation job.
    pub fn expect(
        circuit: impl Into<Arc<ScheduledCircuit>>,
        observables: impl Into<Vec<PauliString>>,
        shots: usize,
        seed: u64,
    ) -> Self {
        Self {
            circuit: circuit.into(),
            dressing: None,
            insertions: Vec::new(),
            request: JobRequest::Expect(observables.into()),
            shots,
            seed,
            cancel: None,
            deadline: None,
        }
    }

    /// A counts job.
    pub fn counts(circuit: impl Into<Arc<ScheduledCircuit>>, shots: usize, seed: u64) -> Self {
        Self {
            circuit: circuit.into(),
            dressing: None,
            insertions: Vec::new(),
            request: JobRequest::Counts,
            shots,
            seed,
            cancel: None,
            deadline: None,
        }
    }

    /// A per-shot ±1 outcomes job.
    pub fn flips(
        circuit: impl Into<Arc<ScheduledCircuit>>,
        observables: impl Into<Vec<PauliString>>,
        shots: usize,
        seed: u64,
    ) -> Self {
        Self {
            circuit: circuit.into(),
            dressing: None,
            insertions: Vec::new(),
            request: JobRequest::Flips(observables.into()),
            shots,
            seed,
            cancel: None,
            deadline: None,
        }
    }

    /// Attaches a twirl dressing (shared-schedule ensemble instance).
    pub fn with_dressing(mut self, dressing: Vec<(usize, Pauli)>) -> Self {
        self.dressing = Some(dressing);
        self
    }

    /// Attaches per-shot Pauli insertions.
    pub fn with_insertions(mut self, insertions: Vec<PauliInsertion>) -> Self {
        self.insertions = insertions;
        self
    }

    /// Attaches a relative deadline. The countdown starts when the
    /// job is submitted ([`Session::run`] / [`Session::submit`]), so
    /// time spent queued behind other jobs counts against it; once it
    /// expires the job stops at the next shot-chunk boundary with
    /// [`SimError::DeadlineExceeded`].
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a caller-held [`CancelToken`]: cancelling it (from
    /// any thread) stops the job at the next shot-chunk boundary with
    /// [`SimError::Cancelled`], freeing its worker.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The token execution polls for this job, arming the relative
    /// deadline *now* (submission time). `None` when the job carries
    /// neither a token nor a deadline — the zero-overhead default.
    fn armed_token(&self) -> Option<CancelToken> {
        match (&self.cancel, self.deadline) {
            (Some(token), Some(deadline)) => {
                token.set_deadline_in(deadline);
                Some(token.clone())
            }
            (Some(token), None) => Some(token.clone()),
            (None, Some(deadline)) => {
                let token = CancelToken::new();
                token.set_deadline_in(deadline);
                Some(token)
            }
            (None, None) => None,
        }
    }
}

/// Observability counter names for one [`Lru`] level (static so
/// recording stays allocation-free).
struct LruCounterNames {
    hit: &'static str,
    miss: &'static str,
    eviction: &'static str,
    verify_mismatch: &'static str,
}

/// A small LRU keyed by a 64-bit structural hash. Hits are verified
/// by the caller-supplied predicate, so hash collisions degrade to
/// misses instead of serving wrong values.
struct Lru<T> {
    capacity: usize,
    stamp: u64,
    entries: BTreeMap<u64, (Arc<T>, u64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
    verify_mismatches: u64,
    obs: LruCounterNames,
}

impl<T> Lru<T> {
    fn new(capacity: usize, obs: LruCounterNames) -> Self {
        Self {
            capacity,
            stamp: 0,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            verify_mismatches: 0,
            obs,
        }
    }

    fn get(&mut self, key: u64, verify: impl FnOnce(&T) -> bool) -> Option<Arc<T>> {
        self.stamp += 1;
        let stamp = self.stamp;
        match self.entries.get_mut(&key) {
            Some((v, used)) => {
                if verify(v) {
                    *used = stamp;
                    self.hits += 1;
                    ca_obs::counter_add(self.obs.hit, 1);
                    Some(v.clone())
                } else {
                    // 64-bit key collision: the entry under this key
                    // is a different circuit. Degrades to a miss (the
                    // caller recompiles); never serves a wrong plan.
                    self.verify_mismatches += 1;
                    self.misses += 1;
                    ca_obs::counter_add(self.obs.verify_mismatch, 1);
                    ca_obs::counter_add(self.obs.miss, 1);
                    None
                }
            }
            None => {
                self.misses += 1;
                ca_obs::counter_add(self.obs.miss, 1);
                None
            }
        }
    }

    fn insert(&mut self, key: u64, value: Arc<T>) {
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        self.entries.insert(key, (value, self.stamp));
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
                .expect("non-empty cache"); // ca-lint: allow(panic) -- eviction only runs when the cache is non-empty
            self.entries.remove(&oldest);
            self.evictions += 1;
            ca_obs::counter_add(self.obs.eviction, 1);
        }
    }
}

/// Cache traffic counters (see [`Session::cache_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compiled-artifact lookups served from the cache.
    pub hits: u64,
    /// Compiled-artifact lookups that compiled fresh.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Lookups whose 64-bit key matched a different circuit: the hit
    /// was rejected by verification and recompiled (also counted in
    /// `misses`).
    pub verify_mismatches: u64,
    /// Compiled artifacts currently cached.
    pub len: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default plan-cache capacity: large enough to hold a full
/// multi-strategy sweep's twirl ensemble, small enough to bound
/// memory.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// The plan-cache capacity [`Session::new`] resolves from the
/// `CA_SIM_PLAN_CACHE` environment variable: a number sets the
/// capacity, `0`/`off` disables caching, unset means
/// [`DEFAULT_PLAN_CACHE_CAPACITY`]. A set-but-invalid value is *not*
/// silently absorbed: `ca_obs::var_parsed_with` warns once on stderr
/// and bumps the `obs.env.invalid` counter before the default
/// applies.
pub fn plan_cache_capacity_from_env() -> usize {
    ca_obs::var_parsed_with("CA_SIM_PLAN_CACHE", |v| {
        if v.eq_ignore_ascii_case("off") {
            Some(0)
        } else {
            v.parse().ok()
        }
    })
    .unwrap_or(DEFAULT_PLAN_CACHE_CAPACITY)
}

/// A simulator with a plan cache and a job API — the serving layer:
/// compile each distinct `(circuit, seed)` once, answer every
/// subsequent submission from the cache, and fan independent jobs
/// out across worker threads.
///
/// Results are deterministic: bit-identical across cache hits and
/// misses, eviction histories, and worker counts.
pub struct Session {
    sim: Simulator,
    sim_fp: u64,
    /// Level one: finished artifacts per `(circuit, seed)`.
    cache: Mutex<Lru<CompiledCircuit>>,
    /// Level two: seed-independent timeline plans per circuit.
    exec: Mutex<Lru<ExecutionPlan>>,
}

impl Session {
    /// A session over a simulator, with the default cache capacity
    /// (or as overridden/disabled by the `CA_SIM_PLAN_CACHE` env
    /// var: a number sets the capacity, `0`/`off` disables caching).
    pub fn new(sim: Simulator) -> Self {
        Self::with_capacity(sim, plan_cache_capacity_from_env())
    }

    /// A session with an explicit cache capacity (0 disables caching).
    pub fn with_capacity(sim: Simulator, capacity: usize) -> Self {
        let sim_fp = sim_fingerprint(&sim);
        Self {
            sim,
            sim_fp,
            cache: Mutex::new(Lru::new(
                capacity,
                LruCounterNames {
                    hit: "session.cache.hit",
                    miss: "session.cache.miss",
                    eviction: "session.cache.eviction",
                    verify_mismatch: "session.cache.verify_mismatch",
                },
            )),
            exec: Mutex::new(Lru::new(
                capacity,
                LruCounterNames {
                    hit: "session.exec_cache.hit",
                    miss: "session.exec_cache.miss",
                    eviction: "session.exec_cache.eviction",
                    verify_mismatch: "session.exec_cache.verify_mismatch",
                },
            )),
        }
    }

    /// The underlying simulator configuration.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Cache traffic counters and current size (compiled-artifact
    /// level): hits, misses, evictions, and verification rejections
    /// of colliding keys.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().expect("plan cache"); // ca-lint: allow(panic) -- fail-stop on poisoned cache; cached plans are unreliable after a panic
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            verify_mismatches: cache.verify_mismatches,
            len: cache.entries.len(),
        }
    }

    /// The seed-independent timeline plan for `sc`, through the
    /// level-two cache.
    fn exec_plan(&self, sc: &ScheduledCircuit) -> Result<Arc<ExecutionPlan>, SimError> {
        let mut h = Fnv::new();
        h.u64(self.sim_fp);
        h.u64(sc.structural_hash());
        let key = h.finish();
        if let Some(hit) = self
            .exec
            .lock()
            .expect("exec cache") // ca-lint: allow(panic) -- fail-stop on poisoned cache; cached plans are unreliable after a panic
            .get(key, |p| *p.sc == *sc)
        {
            return Ok(hit);
        }
        let plan = Arc::new(ExecutionPlan::build_arc(
            Arc::new(sc.clone()),
            &self.sim.device,
            &self.sim.config,
        )?);
        self.exec
            .lock()
            .expect("exec cache") // ca-lint: allow(panic) -- fail-stop on poisoned cache; cached plans are unreliable after a panic
            .insert(key, plan.clone());
        Ok(plan)
    }

    /// The compiled artifact for `(sc, seed)`: served from the LRU
    /// cache when present (verified against the circuit, so hash
    /// collisions can only cost a recompile), compiled and cached
    /// otherwise. Level-one misses still reuse the circuit's cached
    /// timeline plan across seeds.
    pub fn compiled(
        &self,
        sc: &ScheduledCircuit,
        seed: u64,
    ) -> Result<Arc<CompiledCircuit>, SimError> {
        let key = cache_key(self.sim_fp, sc, seed);
        if let Some(hit) = self
            .cache
            .lock()
            .expect("plan cache") // ca-lint: allow(panic) -- fail-stop on poisoned cache; cached plans are unreliable after a panic
            .get(key.0, |c| c.seed() == seed && *c.circuit() == *sc)
        {
            return Ok(hit);
        }
        let plan = self.exec_plan(sc)?;
        let compiled = Arc::new(self.sim.compile_with(plan.sc.clone(), plan, seed, key)?);
        self.cache
            .lock()
            .expect("plan cache") // ca-lint: allow(panic) -- fail-stop on poisoned cache; cached plans are unreliable after a panic
            .insert(key.0, compiled.clone());
        Ok(compiled)
    }

    /// The compiled artifact for a dressed twirl instance: the base
    /// circuit's timeline plan is shared across every instance and
    /// seed; only the frame program and reference run are built per
    /// instance. Falls back to an independent compile when the
    /// dressed circuit resolves to the dense engine (which replays
    /// unitaries from its own plan).
    pub fn compiled_dressed(
        &self,
        base: &ScheduledCircuit,
        dressing: &[(usize, Pauli)],
        seed: u64,
    ) -> Result<Arc<CompiledCircuit>, SimError> {
        let dressed = apply_dressing(base, dressing)?;
        let key = cache_key(self.sim_fp, &dressed, seed);
        if let Some(hit) = self
            .cache
            .lock()
            .expect("plan cache") // ca-lint: allow(panic) -- fail-stop on poisoned cache; cached plans are unreliable after a panic
            .get(key.0, |c| c.seed() == seed && *c.circuit() == dressed)
        {
            return Ok(hit);
        }
        // Resolve through the simulator's own dispatch so this branch
        // can never disagree with the engine `compile_with` picks.
        let frame_capable = self.sim.engine_name_for(&dressed)? != "statevector";
        let compiled = if frame_capable {
            let plan = self.exec_plan(base)?;
            Arc::new(self.sim.compile_with(Arc::new(dressed), plan, seed, key)?)
        } else {
            // Dense resolution: the plan must be built from the
            // dressed circuit itself (cached seed-independently).
            let plan = self.exec_plan(&dressed)?;
            Arc::new(self.sim.compile_with(plan.sc.clone(), plan, seed, key)?)
        };
        self.cache
            .lock()
            .expect("plan cache") // ca-lint: allow(panic) -- fail-stop on poisoned cache; cached plans are unreliable after a panic
            .insert(key.0, compiled.clone());
        Ok(compiled)
    }

    /// Runs one job (compiling through the cache). The job's relative
    /// deadline, if any, is armed now. Panics anywhere in the job —
    /// including plan compilation — surface as
    /// [`SimError::JobPanicked`], exactly as in [`Self::submit`], so
    /// a hostile circuit cannot unwind through the caller's thread.
    pub fn run(&self, job: &Job) -> Result<JobOutput, SimError> {
        let token = job.armed_token();
        self.run_caught(job, None, token.as_ref())
    }

    fn run_with_workers(
        &self,
        job: &Job,
        workers: Option<usize>,
        cancel: Option<&CancelToken>,
    ) -> Result<JobOutput, SimError> {
        let _job_span = ca_obs::span("session", "job")
            .with_arg("shots", job.shots as f64)
            .with_arg("seed", job.seed as f64);
        ca_obs::counter_add("session.jobs", 1);
        // A job cancelled while queued never compiles at all.
        crate::cancel::check_opt(cancel)?;
        let compiled = match &job.dressing {
            Some(dressing) => self.compiled_dressed(&job.circuit, dressing, job.seed)?,
            None => self.compiled(&job.circuit, job.seed)?,
        };
        let ins = compiled.insertions(&job.insertions)?;
        match &job.request {
            JobRequest::Counts => Ok(JobOutput::Counts(
                compiled.run_counts_cancel(job.shots, &ins, workers, cancel)?,
            )),
            JobRequest::Expect(obs) => Ok(JobOutput::Expect(
                compiled.expect_paulis_cancel(obs, job.shots, &ins, workers, cancel)?,
            )),
            JobRequest::Flips(obs) => Ok(JobOutput::Flips(
                compiled.expect_flips_cancel(obs, job.shots, &ins, workers, cancel)?,
            )),
        }
    }

    /// [`Self::run_with_workers`] with the panic boundary: a job that
    /// panics (an engine invariant violation, a malformed calibration
    /// index) fails *itself* with [`SimError::JobPanicked`] instead of
    /// unwinding through the batch fan-out and poisoning every other
    /// job in the submission.
    fn run_caught(
        &self,
        job: &Job,
        workers: Option<usize>,
        cancel: Option<&CancelToken>,
    ) -> Result<JobOutput, SimError> {
        // AssertUnwindSafe: job execution never holds the session's
        // cache locks while running user circuits (lock scopes cover
        // only LRU get/insert, which call no engine code), so a caught
        // panic cannot leave a cache entry half-written.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_with_workers(job, workers, cancel)
        }))
        .unwrap_or_else(|payload| {
            ca_obs::counter_add("session.job_panics", 1);
            Err(SimError::JobPanicked {
                message: panic_message(payload.as_ref()),
            })
        })
    }

    /// Runs a batch of independent jobs, fanned out across worker
    /// threads at job granularity (shot-level chunking stays inside
    /// each job). Results come back in job order and are
    /// bit-identical for every worker count and cache state. A
    /// panicking job fails with [`SimError::JobPanicked`] without
    /// affecting the other jobs; relative deadlines are armed at
    /// submission, so queue wait counts against them.
    pub fn submit(&self, jobs: &[Job]) -> Vec<Result<JobOutput, SimError>> {
        let _batch_span = ca_obs::span("session", "submit").with_arg("jobs", jobs.len() as f64);
        if ca_obs::enabled() {
            ca_obs::gauge_set(
                "session.workers",
                crate::plan::worker_count(None, jobs.len()) as f64,
            );
        }
        let tokens: Vec<Option<CancelToken>> = jobs.iter().map(Job::armed_token).collect();
        // Queue wait = time from submission until a worker picks the
        // job up; the clock is read only when observability is on.
        let submitted = ca_obs::enabled().then(std::time::Instant::now); // ca-lint: allow(wall-clock) -- obs-gated timing attribution; never feeds results
        if jobs.len() <= 1 {
            // A lone job runs inline with the full shot-level fan-out
            // (the batch path below pins inner workers to one thread),
            // through the same span/gauge/histogram instrumentation as
            // every other submission.
            return jobs
                .iter()
                .zip(&tokens)
                .map(|(job, token)| {
                    if let Some(t0) = submitted {
                        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        ca_obs::observe_ns("session", "job.queue_wait", ns);
                    }
                    self.run_caught(job, None, token.as_ref())
                })
                .collect();
        }
        // Jobs occupy the worker threads; pin each job's inner shot
        // fan-out to one thread to avoid oversubscription. (Results
        // are worker-count independent either way.)
        map_batches(jobs.len(), None, |i| {
            if let Some(t0) = submitted {
                let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                ca_obs::observe_ns("session", "job.queue_wait", ns);
            }
            self.run_caught(&jobs[i], Some(1), tokens[i].as_ref())
        })
    }

    /// Submits one twirl ensemble: every instance is a dressing over
    /// `base` (see `ca-core`'s `compile_twirl_ensemble`) and runs as
    /// its own job via the shared-plan fast path. `seeds[i]` seeds
    /// instance `i`'s noise streams.
    pub fn submit_ensemble(
        &self,
        base: &ScheduledCircuit,
        dressings: &[Vec<(usize, Pauli)>],
        observables: &[PauliString],
        shots: usize,
        seeds: &[u64],
    ) -> Vec<Result<Vec<f64>, SimError>> {
        let base = Arc::new(base.clone());
        let jobs: Vec<Job> = dressings
            .iter()
            .zip(seeds.iter())
            .map(|(dressing, &seed)| {
                Job::expect(base.clone(), observables.to_vec(), shots, seed)
                    .with_dressing(dressing.clone())
            })
            .collect();
        self.submit(&jobs)
            .into_iter()
            .map(|r| {
                r.map(|out| match out {
                    JobOutput::Expect(v) => v,
                    _ => unreachable!("expect jobs return expectations"), // ca-lint: allow(panic) -- sessions submit expect jobs only
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseConfig;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    fn noisy_sim(n: usize) -> Simulator {
        let mut dev = uniform_device(Topology::line(n), 60.0);
        for q in 0..n {
            dev.calibration.qubits[q].quasistatic_khz = 30.0;
            dev.calibration.qubits[q].t1_us = 80.0;
            dev.calibration.qubits[q].t2_us = 90.0;
            dev.calibration.qubits[q].readout_err = 0.02;
            dev.calibration.qubits[q].gate_err_1q = 0.002;
        }
        Simulator::with_engine(dev, NoiseConfig::default(), Engine::FrameBatch)
    }

    fn workload(n: usize) -> ScheduledCircuit {
        let mut qc = Circuit::new(n, n);
        for q in 0..n {
            qc.h(q);
        }
        for q in (0..n - 1).step_by(2) {
            qc.ecr(q, q + 1);
        }
        qc.delay(700.0, 0);
        qc.x(0);
        qc.delay(700.0, 0);
        for q in 0..n {
            qc.measure(q, q);
        }
        schedule_asap(&qc, GateDurations::default())
    }

    #[test]
    fn compiled_circuit_is_send_sync_and_reusable() {
        let sim = noisy_sim(5);
        let sc = workload(5);
        let compiled = sim.compile(&sc, 7).unwrap();
        let none = InsertionSet::empty();
        let a = compiled.run_counts(300, &none, None).unwrap();
        // Reuse across threads.
        let arc = Arc::new(compiled);
        let b = std::thread::scope(|s| {
            let arc = arc.clone();
            s.spawn(move || arc.run_counts(300, &none, None).unwrap())
                .join()
                .unwrap()
        });
        assert_eq!(a, b, "same artifact, same seed, same counts");
        assert_eq!(a, sim.run_counts(&sc, 300, 7).unwrap(), "matches one-shot");
    }

    #[test]
    fn cache_hits_are_bit_identical_and_lru_evicts() {
        let sim = noisy_sim(4);
        let session = Session::with_capacity(sim, 1);
        let sc_a = workload(4);
        let mut qc = Circuit::new(4, 4);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let sc_b = schedule_asap(&qc, GateDurations::default());

        let cold = session.run(&Job::counts(sc_a.clone(), 257, 5)).unwrap();
        let warm = session.run(&Job::counts(sc_a.clone(), 257, 5)).unwrap();
        assert_eq!(cold, warm, "cache hit must be bit-identical");
        assert_eq!(session.cache_stats().hits, 1);

        // Capacity 1: compiling B evicts A; resubmitting A recompiles
        // and still matches.
        session.run(&Job::counts(sc_b.clone(), 64, 5)).unwrap();
        assert_eq!(session.cache_stats().len, 1);
        let recompiled = session.run(&Job::counts(sc_a.clone(), 257, 5)).unwrap();
        assert_eq!(cold, recompiled, "eviction never changes results");
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 1, "A was evicted, so no further hits");
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn disabled_cache_matches_enabled() {
        let sc = workload(5);
        let cached = Session::with_capacity(noisy_sim(5), 16);
        let uncached = Session::with_capacity(noisy_sim(5), 0);
        let job = Job::counts(sc, 111, 13);
        let a = cached.run(&job).unwrap();
        let b = cached.run(&job).unwrap();
        let c = uncached.run(&job).unwrap();
        let d = uncached.run(&job).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(c, d);
        assert_eq!(uncached.cache_stats().len, 0);
    }

    #[test]
    fn submit_is_deterministic_across_worker_counts() {
        let sim = noisy_sim(5);
        let session = Session::with_capacity(sim, 16);
        let sc = Arc::new(workload(5));
        let obs = vec![PauliString::parse("ZZIII").unwrap()];
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::expect(sc.clone(), obs.clone(), 193, 100 + i as u64))
            .collect();
        let serial: Vec<_> = jobs.iter().map(|j| session.run(j).unwrap()).collect();
        let parallel: Vec<_> = session
            .submit(&jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(serial, parallel, "job fan-out must not change results");
    }

    #[test]
    fn dense_artifacts_compile_and_reject_frame_only_ops() {
        let dev = uniform_device(Topology::line(2), 0.0);
        let sim = Simulator::with_config(dev, NoiseConfig::ideal());
        let mut qc = Circuit::new(2, 2);
        qc.h(0).append(Gate::Rx(0.3), [1]);
        qc.measure(0, 0).measure(1, 1);
        let sc = schedule_asap(&qc, GateDurations::default());
        let compiled = sim.compile(&sc, 3).unwrap();
        assert_eq!(compiled.engine_name(), "statevector");
        let counts = compiled
            .run_counts(100, &InsertionSet::empty(), None)
            .unwrap();
        assert_eq!(counts, sim.run_counts(&sc, 100, 3).unwrap());
        let err = compiled
            .expect_flips(
                &[PauliString::parse("ZI").unwrap()],
                10,
                &InsertionSet::empty(),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedOnEngine { .. }));
        let err = compiled.redress(&[], 3).unwrap_err();
        assert!(matches!(err, SimError::InvalidDressing { .. }));
    }

    #[test]
    fn redress_rejects_non_slot_targets() {
        let sim = noisy_sim(4);
        let sc = workload(4);
        let compiled = sim.compile(&sc, 7).unwrap();
        // No merged slots in this hand-built circuit: every item is a
        // physical gate or structural op.
        let err = compiled.redress(&[(0, Pauli::X)], 7).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidDressing {
                reason: "target item is not a merged single-qubit Pauli slot",
                ..
            }
        ));
        let err = compiled.redress(&[(usize::MAX, Pauli::X)], 7).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidDressing {
                reason: "target item index out of range",
                ..
            }
        ));
    }

    #[test]
    fn nan_delay_is_a_structured_error() {
        let sim = noisy_sim(2);
        let mut qc = Circuit::new(2, 1);
        qc.h(0).delay(f64::NAN, 0).measure(0, 0);
        let sc = schedule_asap(&qc, GateDurations::default());
        let err = sim.compile(&sc, 1).unwrap_err();
        assert!(matches!(err, SimError::NonFiniteTime { .. }), "{err:?}");
        // The one-shot entry points surface the same error.
        let err2 = sim.run_counts(&sc, 10, 1).unwrap_err();
        assert_eq!(err, err2);
    }
}

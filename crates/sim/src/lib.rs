//! # ca-sim
//!
//! Physics-faithful noisy simulator for scheduled circuits on
//! fixed-frequency superconducting devices — the hardware substitute
//! for the paper's IBM backends (see DESIGN.md §2).
//!
//! The model: a dense statevector evolved trajectory-by-trajectory.
//! Context-dependent coherent crosstalk (always-on ZZ of Eq. 1, gate
//! spectator Z, AC Stark, NNN collision terms) accumulates along a
//! segmented timeline that knows the internal echo structure of each
//! ECR gate; stochastic processes (charge parity, quasi-static 1/f
//! detuning, T1/T2, depolarizing gate error, readout error) are
//! sampled per shot. Dynamical decoupling, twirling, and error
//! compensation then work — or fail — for exactly the physical reasons
//! laid out in the paper.

#![warn(missing_docs)]

pub mod executor;
pub mod noise;
pub mod result;
pub mod statevector;
pub mod timeline;

pub use executor::{pack_bits, Simulator};
pub use noise::{NoiseConfig, ShotNoise};
pub use result::RunResult;
pub use statevector::State;
pub use timeline::{build_segments, Activity, SegmentOp};

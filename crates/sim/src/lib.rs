#![forbid(unsafe_code)]
//! # ca-sim
//!
//! Physics-faithful noisy simulator for scheduled circuits on
//! fixed-frequency superconducting devices — the hardware substitute
//! for the paper's IBM backends (see DESIGN.md §2).
//!
//! Two engines share one noise timeline behind the [`SimEngine`]
//! trait:
//!
//! * **statevector** — a dense state evolved trajectory-by-trajectory:
//!   exact for all gates and for the coherent context-dependent
//!   crosstalk (always-on ZZ of Eq. 1, gate spectator Z, AC Stark, NNN
//!   collision terms) accumulated along a segmented timeline that
//!   knows the internal echo structure of each ECR gate. Exponential
//!   in qubits (≤ 24).
//! * **stabilizer** — a CHP tableau plus per-shot Pauli frames for
//!   Clifford circuits with diagonal rotations and classical
//!   feed-forward (conditional Paulis exact, conditional diagonal
//!   rotations bank-rewritten — see [`pauli_frame`]): the same
//!   pending-bank timeline, with coherent phases converted to
//!   Pauli-twirled stochastic channels at layer boundaries. Linear
//!   scaling to full-device sizes (127+ qubits).
//! * **frame-batch** — the same frame model propagated **64 shots per
//!   machine word** ([`frame_batch`]): bit-identical seeded counts to
//!   the serial stabilizer engine, tens of times faster, and the
//!   engine `Auto` picks for large Clifford and dynamic workloads.
//!
//! Stochastic processes (charge parity, quasi-static 1/f detuning,
//! T1/T2, depolarizing gate error, readout error) are sampled per
//! shot in every engine, from RNG streams seeded per shot index
//! ([`plan::shot_seed`]) so results are independent of thread count
//! and batching. Dynamical decoupling, twirling, and error
//! compensation then work — or fail — for exactly the physical reasons
//! laid out in the paper. [`Engine::Auto`] (the default) picks the
//! backend per circuit; see [`engine`] for the rules. Dispatch and
//! execution are panic-free: unsupported circuits yield a structured
//! [`SimError`].
//!
//! The frame engines additionally support **per-shot Pauli
//! insertions** ([`insert`]) and compilation into owned, reusable
//! artifacts ([`session`]): [`Simulator::compile`] produces a
//! [`CompiledCircuit`] (scheduled circuit + timeline plan + frame
//! programs + resolved engine, `Send + Sync`), and a [`Session`]
//! adds an LRU plan cache and a parallel job API on top — compile
//! once, run millions of shots many times, with results
//! bit-identical to the one-shot entry points for any cache state
//! and worker count.

#![warn(missing_docs)]

pub mod cancel;
pub mod engine;
pub mod error;
pub mod executor;
pub mod frame_batch;
pub mod insert;
pub mod noise;
pub(crate) mod obs_util;
pub mod pauli_frame;
pub mod plan;
pub mod result;
pub mod session;
pub(crate) mod shard;
pub mod stabilizer;
pub mod statevector;
pub mod timeline;

pub use cancel::CancelToken;
pub use engine::{
    check_gate_arities, Engine, SimEngine, StatevectorEngine, AUTO_DENSE_MAX_QUBITS,
    DENSE_MAX_QUBITS,
};
pub use error::SimError;
pub use executor::{pack_bits, Simulator};
pub use frame_batch::{BatchPlan, BatchedFrameEngine, LANES};
pub use insert::{InsertionSet, PauliInsertion};
pub use noise::{NoiseConfig, ShotNoise};
pub use pauli_frame::{
    clifford_supports, stabilizer_check, stabilizer_supports, FramePlan, StabilizerEngine,
    COND_CLBIT_MAX,
};
pub use plan::ExecutionPlan;
pub use result::{PauliFlips, RunResult};
pub use session::{
    CacheKey, CacheStats, CompiledCircuit, Job, JobOutput, JobRequest, Session,
    DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use stabilizer::Tableau;
pub use statevector::State;
pub use timeline::{build_segments, Activity, SegmentOp};

//! Small helpers binding the engines to `ca-obs`.
//!
//! The engines attribute their wall time to three phases — noise
//! *sampling* (RNG draws), frame *propagation* (symplectic updates),
//! and *reduction* (count/expectation merges) — under the `engine`
//! observability category. Everything here reads only the clock:
//! no RNG is drawn and no simulation state is touched, which is what
//! keeps results bit-identical across `CA_OBS` levels.

use std::time::Instant;

#[inline]
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Runs `f`, recording its duration into the `engine/<name>`
/// histogram. When observability is off the clock is never read.
pub(crate) fn time_engine_phase<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let t0 = ca_obs::enabled().then(Instant::now); // ca-lint: allow(wall-clock) -- obs-gated timing attribution; never feeds results
    let out = f();
    if let Some(t0) = t0 {
        ca_obs::observe_ns("engine", name, elapsed_ns(t0));
    }
    out
}

/// Tick-chained sampling/propagation timer for the engines' hot
/// loops: each [`tick_sampling`](PhaseTimer::tick_sampling) /
/// [`tick_propagation`](PhaseTimer::tick_propagation) reads the clock
/// once and attributes the interval since the previous tick to that
/// phase, so a long op sequence costs one clock read per attribution
/// point rather than two. Inert (zero clock reads) when observability
/// is off.
pub(crate) struct PhaseTimer {
    last: Option<Instant>,
    sampling_ns: u64,
    propagation_ns: u64,
}

impl PhaseTimer {
    pub(crate) fn start() -> Self {
        Self {
            last: ca_obs::enabled().then(Instant::now), // ca-lint: allow(wall-clock) -- obs-gated timing attribution; never feeds results
            sampling_ns: 0,
            propagation_ns: 0,
        }
    }

    #[inline]
    pub(crate) fn tick_sampling(&mut self) {
        if let Some(last) = self.last {
            let now = Instant::now(); // ca-lint: allow(wall-clock) -- obs-gated timing attribution; never feeds results
            self.sampling_ns += now.duration_since(last).as_nanos() as u64;
            self.last = Some(now);
        }
    }

    #[inline]
    pub(crate) fn tick_propagation(&mut self) {
        if let Some(last) = self.last {
            let now = Instant::now(); // ca-lint: allow(wall-clock) -- obs-gated timing attribution; never feeds results
            self.propagation_ns += now.duration_since(last).as_nanos() as u64;
            self.last = Some(now);
        }
    }

    /// Flushes the accumulated phase times into the
    /// `engine/sampling` and `engine/propagation` histograms.
    pub(crate) fn finish(self) {
        if self.last.is_some() {
            ca_obs::observe_ns("engine", "sampling", self.sampling_ns);
            ca_obs::observe_ns("engine", "propagation", self.propagation_ns);
        }
    }
}

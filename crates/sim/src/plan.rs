//! The shared execution plan: a scheduled circuit lowered to a single
//! time-ordered op stream that interleaves noise-timeline segments
//! with projections and unitary applications.
//!
//! Both engines consume this plan — the dense statevector trajectory
//! executor and the stabilizer/Pauli-frame sampler — so the
//! context-aware noise timeline (echo structure, flush ordering,
//! crosstalk edge bookkeeping) is defined in exactly one place.

use crate::error::SimError;
use crate::noise::NoiseConfig;
use crate::timeline::{build_segments, SegmentOp};
use ca_circuit::{Gate, ScheduledCircuit};
use ca_device::Device;
use std::sync::Arc;

/// One step of the lowered op stream.
#[derive(Clone, Copy, Debug)]
pub enum PlanOp {
    /// Accrue one timeline segment into the pending phase banks.
    Segment(usize),
    /// Collapse a measured/reset qubit (window start).
    Project {
        /// Index into `sc.items`.
        item: usize,
    },
    /// Apply the unitary of a scheduled item (window end).
    Apply {
        /// Index into `sc.items`.
        item: usize,
    },
}

/// Precomputed execution plan shared by all shots of a run.
///
/// The plan *owns* its scheduled circuit (behind an [`Arc`], so
/// compiled artifacts can share it): plans are plain `Send + Sync`
/// values that can be cached, stored across calls, and shipped
/// between threads — the foundation of the session/plan-cache layer
/// in [`crate::session`].
pub struct ExecutionPlan {
    /// The scheduled circuit being executed.
    pub sc: Arc<ScheduledCircuit>,
    /// Noise-timeline segments (see [`build_segments`]).
    pub segments: Vec<SegmentOp>,
    /// Time-ordered op stream. At equal times segments flush first,
    /// then unitaries ending there, then projections starting there.
    pub ops: Vec<PlanOp>,
    /// Crosstalk-edge index → `(a, b)` qubit pair.
    pub edge_pairs: Vec<(usize, usize)>,
    /// Per-qubit list of incident crosstalk-edge indices.
    pub incident: Vec<Vec<usize>>,
    /// Per-segment ZZ contributions resolved to edge indices:
    /// `(edge, θ)` — precomputed so the per-shot loop never searches
    /// the edge list (O(edges²·segments·shots) at 127 qubits
    /// otherwise).
    pub seg_edges: Vec<Vec<(usize, f64)>>,
    /// Pair → index into [`Self::edge_pairs`] (keys normalized to
    /// `(min, max)`). Includes the *virtual* edges appended for
    /// circuit diagonal rotations on pairs the device does not
    /// couple, so the frame engines can bank any `Rzz` / conditional
    /// `Rz` the circuit carries. Virtual edges never accrue timeline
    /// noise (`seg_edges` is built from the device list alone).
    pub edge_index: std::collections::BTreeMap<(usize, usize), usize>,
    /// For every scheduled item carrying a feed-forward condition:
    /// the qubit whose earlier measurement (in plan/time order) last
    /// wrote the condition's classical bit, or `None` when the bit is
    /// still at its initial 0 when the conditional executes.
    pub cond_source: std::collections::BTreeMap<usize, Option<usize>>,
}

impl ExecutionPlan {
    /// Lowers a scheduled circuit against a device and noise config.
    /// Clones the circuit into shared ownership; callers that already
    /// hold an [`Arc`] should use [`Self::build_arc`].
    pub fn build(
        sc: &ScheduledCircuit,
        device: &Device,
        config: &NoiseConfig,
    ) -> Result<Self, SimError> {
        Self::build_arc(Arc::new(sc.clone()), device, config)
    }

    /// [`Self::build`] over a shared scheduled circuit. Fails with a
    /// structured [`SimError`] when an item carries a non-finite time
    /// (a `Delay(NaN)` survives scheduling); the plan's time ordering
    /// would otherwise be undefined.
    pub fn build_arc(
        sc: Arc<ScheduledCircuit>,
        device: &Device,
        config: &NoiseConfig,
    ) -> Result<Self, SimError> {
        let _s =
            ca_obs::span("sim.compile", "timeline-plan").with_arg("items", sc.items.len() as f64);
        // Arity first: the lowering below indexes fixed operand slots.
        crate::engine::check_gate_arities(&sc)?;
        for (i, si) in sc.items.iter().enumerate() {
            if !si.t0.is_finite() || !si.duration.is_finite() {
                return Err(SimError::NonFiniteTime {
                    item: i,
                    gate: si.instruction.gate.name(),
                });
            }
        }
        let segments = build_segments(&sc, device, config);
        let mut keyed: Vec<(f64, u8, PlanOp)> = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            keyed.push((seg.t1, 0, PlanOp::Segment(i)));
        }
        for (i, si) in sc.items.iter().enumerate() {
            match si.instruction.gate {
                Gate::Barrier | Gate::Delay(_) => {}
                // Rank order at equal times: segments flush first, then
                // unitaries ending here, then projections starting here.
                Gate::Measure | Gate::Reset => keyed.push((si.t0, 2, PlanOp::Project { item: i })),
                _ => keyed.push((si.t1(), 1, PlanOp::Apply { item: i })),
            }
        }
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut edge_pairs: Vec<(usize, usize)> =
            device.crosstalk.edges.iter().map(|e| (e.a, e.b)).collect();
        let mut incident = vec![Vec::new(); sc.num_qubits];
        let mut edge_index = std::collections::BTreeMap::new();
        for (idx, &(a, b)) in edge_pairs.iter().enumerate() {
            edge_index.insert((a.min(b), a.max(b)), idx);
            if a < sc.num_qubits && b < sc.num_qubits {
                incident[a].push(idx);
                incident[b].push(idx);
            }
        }
        let seg_edges: Vec<Vec<(usize, f64)>> = segments
            .iter()
            .map(|seg| {
                seg.rzz_static
                    .iter()
                    .filter(|(_, _, th)| th.abs() > 1e-15)
                    .filter_map(|&(a, b, th)| {
                        edge_index.get(&(a.min(b), a.max(b))).map(|&e| (e, th))
                    })
                    .collect()
            })
            .collect();
        let ops: Vec<PlanOp> = keyed.into_iter().map(|(_, _, op)| op).collect();

        // Resolve feed-forward dataflow in plan (time) order: which
        // measurement wrote each conditional's classical bit, and
        // which qubit pairs need an edge bank that the device's
        // crosstalk list does not already provide (circuit `Rzz` on
        // uncoupled pairs; conditional diagonal rotations, which the
        // frame engines rewrite into a local-plus-edge bank term
        // against the measured source qubit).
        let mut cond_source: std::collections::BTreeMap<usize, Option<usize>> =
            std::collections::BTreeMap::new();
        let mut writer: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        let mut ensure_edge = |a: usize,
                               b: usize,
                               edge_pairs: &mut Vec<(usize, usize)>,
                               incident: &mut Vec<Vec<usize>>| {
            let key = (a.min(b), a.max(b));
            if let std::collections::btree_map::Entry::Vacant(slot) = edge_index.entry(key) {
                let idx = edge_pairs.len();
                edge_pairs.push(key);
                slot.insert(idx);
                if a < sc.num_qubits && b < sc.num_qubits {
                    incident[a].push(idx);
                    incident[b].push(idx);
                }
            }
        };
        for op in &ops {
            match *op {
                PlanOp::Segment(_) => {}
                PlanOp::Project { item } => {
                    let si = &sc.items[item];
                    if si.instruction.gate == Gate::Measure {
                        if let Some(c) = si.instruction.clbit {
                            writer.insert(c, si.instruction.qubits[0]);
                        }
                    }
                }
                PlanOp::Apply { item } => {
                    let instr = &sc.items[item].instruction;
                    let gate = instr.gate;
                    if let Some(cond) = instr.condition {
                        let source = writer.get(&cond.clbit).copied();
                        cond_source.insert(item, source);
                        if gate.is_diagonal() && !gate.is_pauli() && gate.num_qubits() == 1 {
                            if let Some(aux) = source {
                                if aux != instr.qubits[0] {
                                    ensure_edge(
                                        aux,
                                        instr.qubits[0],
                                        &mut edge_pairs,
                                        &mut incident,
                                    );
                                }
                            }
                        }
                    } else if matches!(gate, Gate::Rzz(_)) && !gate.is_clifford() {
                        ensure_edge(
                            instr.qubits[0],
                            instr.qubits[1],
                            &mut edge_pairs,
                            &mut incident,
                        );
                    }
                }
            }
        }

        Ok(Self {
            sc,
            segments,
            ops,
            edge_pairs,
            incident,
            seg_edges,
            edge_index,
            cond_source,
        })
    }
}

/// Fixed shot-block size: chunk boundaries (and therefore the RNG
/// stream of every shot) are independent of the host's core count, so
/// a seed reproduces the same counts on any machine.
const CHUNK_SHOTS: usize = 128;

/// The RNG seed of one shot, derived from the run seed and the shot's
/// global index alone (SplitMix64-style mix). Both Pauli-frame paths —
/// the serial reference sampler and the bit-parallel batch engine —
/// seed shot `i` identically from this function, which is what makes
/// their counts bit-identical and thread-count independent.
pub fn shot_seed(seed: u64, shot: usize) -> u64 {
    let mut z = seed ^ (shot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves the worker-thread count for a fan-out over `jobs` work
/// units: an explicit request wins, then the `CA_SIM_WORKERS`
/// environment variable (used by CI to pin thread counts in
/// determinism checks), then the host's available parallelism. An
/// invalid `CA_SIM_WORKERS` is not silently ignored:
/// `ca_obs::var_parsed` warns once and counts it before the host
/// default applies.
pub fn worker_count(requested: Option<usize>, jobs: usize) -> usize {
    let base = requested
        .or_else(|| ca_obs::var_parsed::<usize>("CA_SIM_WORKERS"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        });
    base.clamp(1, 16).min(jobs.max(1))
}

/// Runs `shots` across worker threads with a *per-shot* seeded RNG
/// (see [`shot_seed`]): shot `i` sees the same stream no matter how
/// shots are distributed over threads. The closure receives the
/// global shot index (used for per-shot Pauli-insertion lookups).
/// Returns per-worker accumulators for the caller to merge. Used by
/// the serial Pauli-frame sampler; the batch engine reproduces the
/// identical per-shot streams 64 lanes at a time.
pub fn map_shots_indexed<Acc: Send>(
    shots: usize,
    seed: u64,
    workers: Option<usize>,
    new_acc: impl Fn() -> Acc + Sync,
    per_shot: impl Fn(usize, &mut rand::rngs::StdRng, &mut Acc) + Sync,
) -> Vec<Acc> {
    use rand::SeedableRng;
    let chunks = chunk_ranges(shots);
    let workers = worker_count(workers, chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let chunks = &chunks;
                let new_acc = &new_acc;
                let per_shot = &per_shot;
                scope.spawn(move || {
                    let mut acc = new_acc();
                    for &(start, len) in chunks.iter().skip(w).step_by(workers) {
                        for i in start..start + len {
                            let mut rng = rand::rngs::StdRng::seed_from_u64(shot_seed(seed, i));
                            per_shot(i, &mut rng, &mut acc);
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shot thread")) // ca-lint: allow(panic) -- fail-stop on worker panic; salvaging a partial batch would corrupt results
            .collect()
    })
}

/// Runs `jobs` independent batch jobs across worker threads and
/// returns their outputs **in job order**, regardless of thread count
/// or scheduling. Integer count merges are order-independent anyway;
/// returning in job order additionally makes floating-point
/// accumulations (expectation sums) bit-identical across worker
/// counts, which the batch engine's determinism guarantee relies on.
pub fn map_batches<Out: Send>(
    jobs: usize,
    workers: Option<usize>,
    run: impl Fn(usize) -> Out + Sync,
) -> Vec<Out> {
    let workers = worker_count(workers, jobs);
    let slots: Vec<std::sync::Mutex<Option<Out>>> =
        (0..jobs).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let run = &run;
            scope.spawn(move || {
                for j in (w..jobs).step_by(workers) {
                    let out = run(j);
                    *slots[j].lock().expect("batch slot") = Some(out); // ca-lint: allow(panic) -- fail-stop on poisoned slot; determinism-critical state is unreliable after a panic
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("batch slot").expect("batch output")) // ca-lint: allow(panic) -- fail-stop on poisoned slot; determinism-critical state is unreliable after a panic
        .collect()
}

/// Splits `shots` into fixed-size ranges (machine-independent).
pub fn chunk_ranges(shots: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < shots {
        let len = CHUNK_SHOTS.min(shots - start);
        out.push((start, len));
        start += len;
    }
    out
}

/// The per-chunk RNG seed: decorrelates chunks deterministically.
pub fn chunk_seed(seed: u64, start: usize) -> u64 {
    seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(start as u64 + 1))
}

/// Runs `shots` across scoped worker threads. Chunk boundaries and
/// per-chunk RNG streams are fixed by the seed alone (workers pick up
/// chunks in a strided pattern), so classical counts are bit-for-bit
/// reproducible across machines; floating-point accumulations are
/// reproducible up to summation order. Returns the per-worker
/// accumulators for the caller to merge. The single fan-out used by
/// both engines' `run_counts` and `expect_paulis`.
pub fn map_shots<Acc: Send>(
    shots: usize,
    seed: u64,
    new_acc: impl Fn() -> Acc + Sync,
    per_shot: impl Fn(&mut rand::rngs::StdRng, &mut Acc) + Sync,
) -> Vec<Acc> {
    use rand::SeedableRng;
    let chunks = chunk_ranges(shots);
    let workers = worker_count(None, chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let chunks = &chunks;
                let new_acc = &new_acc;
                let per_shot = &per_shot;
                scope.spawn(move || {
                    let mut acc = new_acc();
                    for &(start, len) in chunks.iter().skip(w).step_by(workers) {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(chunk_seed(seed, start));
                        for _ in 0..len {
                            per_shot(&mut rng, &mut acc);
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shot thread")) // ca-lint: allow(panic) -- fail-stop on worker panic; salvaging a partial batch would corrupt results
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    #[test]
    fn plan_orders_segments_before_applies() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 1);
        qc.h(0).ecr(0, 1).measure(1, 0);
        let sc = schedule_asap(&qc, GateDurations::default());
        let plan = ExecutionPlan::build(&sc, &dev, &NoiseConfig::coherent_only()).unwrap();
        // Every Apply/Project op references a valid item; segments cover
        // the full duration.
        for op in &plan.ops {
            match *op {
                PlanOp::Segment(i) => assert!(i < plan.segments.len()),
                PlanOp::Apply { item } | PlanOp::Project { item } => {
                    assert!(item < sc.items.len())
                }
            }
        }
        let total: f64 = plan.segments.iter().map(|s| s.dt()).sum();
        assert!((total - sc.duration).abs() < 1e-9);
        assert_eq!(plan.edge_pairs, vec![(0, 1)]);
        assert_eq!(plan.incident[0], vec![0]);
    }

    #[test]
    fn chunks_cover_all_shots() {
        for shots in [1usize, 7, 100, 1001] {
            let chunks = chunk_ranges(shots);
            let covered: usize = chunks.iter().map(|&(_, len)| len).sum();
            assert_eq!(covered, shots);
            assert_eq!(chunks[0].0, 0);
        }
    }
}

//! The shared execution plan: a scheduled circuit lowered to a single
//! time-ordered op stream that interleaves noise-timeline segments
//! with projections and unitary applications.
//!
//! Both engines consume this plan — the dense statevector trajectory
//! executor and the stabilizer/Pauli-frame sampler — so the
//! context-aware noise timeline (echo structure, flush ordering,
//! crosstalk edge bookkeeping) is defined in exactly one place.

use crate::error::SimError;
use crate::noise::NoiseConfig;
use crate::timeline::{build_segments, SegmentOp};
use ca_circuit::{Gate, ScheduledCircuit};
use ca_device::Device;
use std::sync::Arc;

/// One step of the lowered op stream.
#[derive(Clone, Copy, Debug)]
pub enum PlanOp {
    /// Accrue one timeline segment into the pending phase banks.
    Segment(usize),
    /// Collapse a measured/reset qubit (window start).
    Project {
        /// Index into `sc.items`.
        item: usize,
    },
    /// Apply the unitary of a scheduled item (window end).
    Apply {
        /// Index into `sc.items`.
        item: usize,
    },
}

/// Precomputed execution plan shared by all shots of a run.
///
/// The plan *owns* its scheduled circuit (behind an [`Arc`], so
/// compiled artifacts can share it): plans are plain `Send + Sync`
/// values that can be cached, stored across calls, and shipped
/// between threads — the foundation of the session/plan-cache layer
/// in [`crate::session`].
pub struct ExecutionPlan {
    /// The scheduled circuit being executed.
    pub sc: Arc<ScheduledCircuit>,
    /// Noise-timeline segments (see [`build_segments`]).
    pub segments: Vec<SegmentOp>,
    /// Time-ordered op stream. At equal times segments flush first,
    /// then unitaries ending there, then projections starting there.
    pub ops: Vec<PlanOp>,
    /// Crosstalk-edge index → `(a, b)` qubit pair.
    pub edge_pairs: Vec<(usize, usize)>,
    /// Per-qubit list of incident crosstalk-edge indices.
    pub incident: Vec<Vec<usize>>,
    /// Per-segment ZZ contributions resolved to edge indices:
    /// `(edge, θ)` — precomputed so the per-shot loop never searches
    /// the edge list (O(edges²·segments·shots) at 127 qubits
    /// otherwise).
    pub seg_edges: Vec<Vec<(usize, f64)>>,
    /// Pair → index into [`Self::edge_pairs`] (keys normalized to
    /// `(min, max)`). Includes the *virtual* edges appended for
    /// circuit diagonal rotations on pairs the device does not
    /// couple, so the frame engines can bank any `Rzz` / conditional
    /// `Rz` the circuit carries. Virtual edges never accrue timeline
    /// noise (`seg_edges` is built from the device list alone).
    pub edge_index: std::collections::BTreeMap<(usize, usize), usize>,
    /// For every scheduled item carrying a feed-forward condition:
    /// the qubit whose earlier measurement (in plan/time order) last
    /// wrote the condition's classical bit, or `None` when the bit is
    /// still at its initial 0 when the conditional executes.
    pub cond_source: std::collections::BTreeMap<usize, Option<usize>>,
}

impl ExecutionPlan {
    /// Lowers a scheduled circuit against a device and noise config.
    /// Clones the circuit into shared ownership; callers that already
    /// hold an [`Arc`] should use [`Self::build_arc`].
    pub fn build(
        sc: &ScheduledCircuit,
        device: &Device,
        config: &NoiseConfig,
    ) -> Result<Self, SimError> {
        Self::build_arc(Arc::new(sc.clone()), device, config)
    }

    /// [`Self::build`] over a shared scheduled circuit. Fails with a
    /// structured [`SimError`] when an item carries a non-finite time
    /// (a `Delay(NaN)` survives scheduling); the plan's time ordering
    /// would otherwise be undefined.
    pub fn build_arc(
        sc: Arc<ScheduledCircuit>,
        device: &Device,
        config: &NoiseConfig,
    ) -> Result<Self, SimError> {
        let _s =
            ca_obs::span("sim.compile", "timeline-plan").with_arg("items", sc.items.len() as f64);
        // Arity first: the lowering below indexes fixed operand slots.
        crate::engine::check_gate_arities(&sc)?;
        for (i, si) in sc.items.iter().enumerate() {
            if !si.t0.is_finite() || !si.duration.is_finite() {
                return Err(SimError::NonFiniteTime {
                    item: i,
                    gate: si.instruction.gate.name(),
                });
            }
        }
        let segments = build_segments(&sc, device, config);
        let mut keyed: Vec<(f64, u8, PlanOp)> = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            keyed.push((seg.t1, 0, PlanOp::Segment(i)));
        }
        for (i, si) in sc.items.iter().enumerate() {
            match si.instruction.gate {
                Gate::Barrier | Gate::Delay(_) => {}
                // Rank order at equal times: segments flush first, then
                // unitaries ending here, then projections starting here.
                Gate::Measure | Gate::Reset => keyed.push((si.t0, 2, PlanOp::Project { item: i })),
                _ => keyed.push((si.t1(), 1, PlanOp::Apply { item: i })),
            }
        }
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut edge_pairs: Vec<(usize, usize)> =
            device.crosstalk.edges.iter().map(|e| (e.a, e.b)).collect();
        let mut incident = vec![Vec::new(); sc.num_qubits];
        let mut edge_index = std::collections::BTreeMap::new();
        for (idx, &(a, b)) in edge_pairs.iter().enumerate() {
            edge_index.insert((a.min(b), a.max(b)), idx);
            if a < sc.num_qubits && b < sc.num_qubits {
                incident[a].push(idx);
                incident[b].push(idx);
            }
        }
        let seg_edges: Vec<Vec<(usize, f64)>> = segments
            .iter()
            .map(|seg| {
                seg.rzz_static
                    .iter()
                    .filter(|(_, _, th)| th.abs() > 1e-15)
                    .filter_map(|&(a, b, th)| {
                        edge_index.get(&(a.min(b), a.max(b))).map(|&e| (e, th))
                    })
                    .collect()
            })
            .collect();
        let ops: Vec<PlanOp> = keyed.into_iter().map(|(_, _, op)| op).collect();

        // Resolve feed-forward dataflow in plan (time) order: which
        // measurement wrote each conditional's classical bit, and
        // which qubit pairs need an edge bank that the device's
        // crosstalk list does not already provide (circuit `Rzz` on
        // uncoupled pairs; conditional diagonal rotations, which the
        // frame engines rewrite into a local-plus-edge bank term
        // against the measured source qubit).
        let mut cond_source: std::collections::BTreeMap<usize, Option<usize>> =
            std::collections::BTreeMap::new();
        let mut writer: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        let mut ensure_edge = |a: usize,
                               b: usize,
                               edge_pairs: &mut Vec<(usize, usize)>,
                               incident: &mut Vec<Vec<usize>>| {
            let key = (a.min(b), a.max(b));
            if let std::collections::btree_map::Entry::Vacant(slot) = edge_index.entry(key) {
                let idx = edge_pairs.len();
                edge_pairs.push(key);
                slot.insert(idx);
                if a < sc.num_qubits && b < sc.num_qubits {
                    incident[a].push(idx);
                    incident[b].push(idx);
                }
            }
        };
        for op in &ops {
            match *op {
                PlanOp::Segment(_) => {}
                PlanOp::Project { item } => {
                    let si = &sc.items[item];
                    if si.instruction.gate == Gate::Measure {
                        if let Some(c) = si.instruction.clbit {
                            writer.insert(c, si.instruction.qubits[0]);
                        }
                    }
                }
                PlanOp::Apply { item } => {
                    let instr = &sc.items[item].instruction;
                    let gate = instr.gate;
                    if let Some(cond) = instr.condition {
                        let source = writer.get(&cond.clbit).copied();
                        cond_source.insert(item, source);
                        if gate.is_diagonal() && !gate.is_pauli() && gate.num_qubits() == 1 {
                            if let Some(aux) = source {
                                if aux != instr.qubits[0] {
                                    ensure_edge(
                                        aux,
                                        instr.qubits[0],
                                        &mut edge_pairs,
                                        &mut incident,
                                    );
                                }
                            }
                        }
                    } else if matches!(gate, Gate::Rzz(_)) && !gate.is_clifford() {
                        ensure_edge(
                            instr.qubits[0],
                            instr.qubits[1],
                            &mut edge_pairs,
                            &mut incident,
                        );
                    }
                }
            }
        }

        Ok(Self {
            sc,
            segments,
            ops,
            edge_pairs,
            incident,
            seg_edges,
            edge_index,
            cond_source,
        })
    }
}

/// Fixed shot-block size: chunk boundaries (and therefore the RNG
/// stream of every shot) are independent of the host's core count, so
/// a seed reproduces the same counts on any machine.
const CHUNK_SHOTS: usize = 128;

/// The RNG seed of one shot, derived from the run seed and the shot's
/// global index alone (SplitMix64-style mix). Both Pauli-frame paths —
/// the serial reference sampler and the bit-parallel batch engine —
/// seed shot `i` identically from this function, which is what makes
/// their counts bit-identical and thread-count independent.
pub fn shot_seed(seed: u64, shot: usize) -> u64 {
    let mut z = seed ^ (shot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which per-shot noise-draw schedule the frame engines use.
///
/// * [`SeedSchedule::V1`] — the legacy sequential schedule: shot `i`
///   owns a `StdRng` seeded from [`shot_seed`], and every draw
///   consumes the next value of that stream. Draw identity is
///   positional, so engines must replay the exact draw *order*.
/// * [`SeedSchedule::V2`] — the counter-based schedule: every draw is
///   a pure hash of `(seed, shot, site)` (see [`shot_site_seed`]),
///   where the site id names the structural location of the draw
///   (noise class, plan-op index, qubit/edge). Draws are
///   order-independent, which lets the batch engine sample Bernoulli
///   decisions as bit-planes instead of 64 sequential streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedSchedule {
    /// Legacy per-shot sequential streams (pre-v2 goldens).
    V1,
    /// Counter-based per-(shot, site) hashing (default).
    V2,
}

impl SeedSchedule {
    /// Stable name, hashed into the session fingerprint.
    pub fn name(self) -> &'static str {
        match self {
            SeedSchedule::V1 => "v1",
            SeedSchedule::V2 => "v2",
        }
    }
}

/// Reads `CA_SIM_SEED_SCHEDULE` (`1`/`v1`/`legacy` or `2`/`v2`);
/// defaults to [`SeedSchedule::V2`]. An invalid value warns once via
/// the obs layer and falls back to the default.
pub fn seed_schedule_from_env() -> SeedSchedule {
    ca_obs::var_parsed_with("CA_SIM_SEED_SCHEDULE", |s| {
        match s.trim().to_ascii_lowercase().as_str() {
            "1" | "v1" | "legacy" => Some(SeedSchedule::V1),
            "2" | "v2" => Some(SeedSchedule::V2),
            _ => None,
        }
    })
    .unwrap_or(SeedSchedule::V2)
}

/// SplitMix64 finalizer: the avalanche permutation behind both seed
/// schedules.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const SHOT_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
const SITE_MUL: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Schedule-v2 per-shot stream key: `mix64(seed ^ shot·φ)`. The inner
/// half of [`shot_site_seed`], exposed so the batch engine can hoist
/// it per lane and pay only one multiply + finalizer per site.
#[inline]
pub fn shot_key(seed: u64, shot: u64) -> u64 {
    mix64(seed ^ shot.wrapping_mul(SHOT_MUL))
}

/// Schedule-v2 draw: a full-avalanche 64-bit word that is a pure
/// function of `(seed, shot, site)`. Two rounds of the SplitMix64
/// finalizer, keyed by shot on the inner round and by site on the
/// outer, so draws at different sites (or shots) are decorrelated and
/// *order-independent* — the property the bit-sliced batch sampler is
/// built on.
#[inline]
pub fn shot_site_seed(seed: u64, shot: u64, site: u64) -> u64 {
    mix64(shot_key(seed, shot) ^ site.wrapping_mul(SITE_MUL))
}

/// [`shot_site_seed`] completed from a hoisted [`shot_key`].
#[inline]
pub fn site_draw(shot_key: u64, site: u64) -> u64 {
    mix64(shot_key ^ site.wrapping_mul(SITE_MUL))
}

/// Schedule-v2 bit-plane base for a (64-shot word, site) pair: plane
/// `k` of the word's 64 lanes is [`plane`]` (base, k)`. Lane `j` of
/// plane `k` is bit `k` (MSB-first) of lane `j`'s conceptual uniform
/// draw at this site; the serial engine extracts single lane bits from
/// the *same* planes, which is what keeps the engines bit-identical.
#[inline]
pub fn plane_base(seed: u64, word: u64, site: u64) -> u64 {
    mix64(mix64(seed ^ word.wrapping_mul(SHOT_MUL)) ^ site.wrapping_mul(SITE_MUL))
}

/// Plane `k` (MSB-first bit `k` of all 64 lanes) of a site's uniform
/// draw word. Planes are pure functions of `k`: consuming a different
/// number of planes on different code paths (the ladder's early exit)
/// cannot shift any other draw.
#[inline]
pub fn plane(base: u64, k: u32) -> u64 {
    mix64(base ^ (k as u64 + 1).wrapping_mul(SHOT_MUL))
}

/// A fair coin per lane: plane 0 used as the mask directly.
#[inline]
pub fn fair_plane(base: u64) -> u64 {
    plane(base, 0)
}

/// Bernoulli threshold: `u < bern_threshold(p)` over a uniform
/// `u: u64` fires with probability `p` (up to 2⁻⁶⁴ quantization;
/// `p ≥ 1` saturates to firing always except on `u == u64::MAX`).
#[inline]
pub fn bern_threshold(p: f64) -> u64 {
    if p >= 1.0 {
        u64::MAX
    } else if p > 0.0 {
        (p * 18_446_744_073_709_551_616.0) as u64
    } else {
        0
    }
}

/// The phase-flip Bernoulli threshold of a banked rotation angle:
/// `sin²(θ/2)` pushed through [`bern_threshold`], with the same
/// `|θ| > 1e-15` dead-zone both engines use. The single source of
/// truth that keeps the serial runtime draw and the batch
/// compile-time threshold tables bit-identical.
#[inline]
pub fn bern_theta(theta: f64) -> u64 {
    if theta.abs() > 1e-15 {
        bern_threshold((theta / 2.0).sin().powi(2))
    } else {
        0
    }
}

/// The three amplitude-damping twirl thresholds `(γ/4, γ/2, 3γ/4)` as
/// Bernoulli thresholds over one shared uniform. Shared by the serial
/// v2 draw and the batch compile step.
#[inline]
pub fn damping_thresholds(gamma: f64) -> [u64; 3] {
    [
        bern_threshold(gamma / 4.0),
        bern_threshold(gamma / 2.0),
        bern_threshold(0.75 * gamma),
    ]
}

/// Lanes (bitmask) whose uniform draw at this site is `< t`, computed
/// from MSB-first bit-planes with early exit: once every remaining
/// threshold bit is 0, undecided lanes can no longer be below `t`.
/// Expected planes consumed ≈ 8 for a generic threshold, 1 for
/// dyadic `p = 1/2`.
#[inline]
pub fn lt_mask(base: u64, t: u64) -> u64 {
    let mut result = 0u64;
    let mut undecided = u64::MAX;
    for k in 0..64 {
        if undecided == 0 || t << k == 0 {
            break;
        }
        let p = plane(base, k);
        if t >> (63 - k) & 1 == 1 {
            result |= undecided & !p;
            undecided &= p;
        } else {
            undecided &= !p;
        }
    }
    result
}

/// [`lt_mask`] for several thresholds over one shared uniform,
/// hashing each bit-plane at most once (the amplitude-damping twirl
/// compares its three thresholds against a single draw). Entry `i`
/// equals `lt_mask(base, ts[i])` bit for bit: each ladder freezes
/// exactly where its standalone run would have exited, and planes are
/// pure functions of `k`, so sharing them cannot perturb any ladder.
#[inline]
pub fn lt_masks<const N: usize>(base: u64, ts: [u64; N]) -> [u64; N] {
    let mut result = [0u64; N];
    let mut undecided = [u64::MAX; N];
    // Ladders still running, as an index bitmask. An index leaves for
    // good once its lanes are all decided or its remaining threshold
    // bits are zero — both conditions are monotone in `k`, so dropping
    // it permanently matches the per-`k` skip bit for bit.
    let mut live: u32 = (1 << N) - 1;
    let mut k = 0u32;
    while live != 0 && k < 64 {
        let p = plane(base, k);
        let mut rem = live;
        while rem != 0 {
            let i = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            if ts[i] << k == 0 {
                live &= !(1 << i);
                continue;
            }
            if ts[i] >> (63 - k) & 1 == 1 {
                result[i] |= undecided[i] & !p;
                undecided[i] &= p;
            } else {
                undecided[i] &= !p;
            }
            if undecided[i] == 0 {
                live &= !(1 << i);
            }
        }
        k += 1;
    }
    result
}

/// Single-lane [`lt_mask`]: the serial engine's view of the same
/// bit-plane comparison. `lt_lane(base, j, t)` equals bit `j` of
/// `lt_mask(base, t)` for every lane, threshold, and base.
#[inline]
pub fn lt_lane(base: u64, lane: u32, t: u64) -> bool {
    for k in 0..64 {
        if t << k == 0 {
            return false;
        }
        let ubit = plane(base, k) >> lane & 1;
        let tbit = t >> (63 - k) & 1;
        if ubit != tbit {
            return tbit == 1;
        }
    }
    false
}

/// Unbiased-enough index pick in `0..n` via the widening-multiply
/// trick (bias ≤ n·2⁻⁶⁴). Used for error-Pauli selectors.
#[inline]
pub fn pick(h: u64, n: u64) -> u64 {
    ((h as u128 * n as u128) >> 64) as u64
}

/// Trials in the schedule-v2 lattice Gaussian: `popcount` of the low
/// 32 hash bits, recentred and rescaled to zero mean, unit variance.
/// A Binomial(32, ½) lattice (step σ/√8, range ±4√2·σ) — within the
/// quasistatic-detuning physics bands while costing one popcount per
/// draw, and free of the Box–Muller spare-half stream coupling.
pub const LATTICE_STEPS: usize = 33;
const LATTICE_SCALE: f64 = 0.353_553_390_593_273_8; // 1/√8

/// The lattice-Gaussian value of popcount index `idx ∈ 0..=32`.
#[inline]
pub fn lattice_value(idx: usize) -> f64 {
    (idx as i32 - 16) as f64 * LATTICE_SCALE
}

/// The lattice-Gaussian popcount index of a hash word.
#[inline]
pub fn lattice_idx(h: u64) -> usize {
    (h & 0xFFFF_FFFF).count_ones() as usize
}

/// Structural site ids for schedule v2: every noise draw is named by
/// `(class, plan-op index, unit)` where `unit` is a qubit or
/// crosstalk-edge index. Identity is *structural*, not positional —
/// both engines compute the same site id for the same physical draw
/// no matter how many other draws each path happens to evaluate.
pub mod site {
    /// Per-qubit shot-noise hash (charge-parity sign in bit 63,
    /// quasistatic lattice index in the low 32 bits).
    pub const NOISE: u64 = 1;
    /// Initial Z-frame randomization of a qubit.
    pub const INIT_Z: u64 = 2;
    /// Banked single-qubit phase flush (per-shot threshold).
    pub const FLUSH_Z: u64 = 3;
    /// Banked crosstalk-edge flush (compile-constant threshold).
    pub const FLUSH_ZZ: u64 = 4;
    /// Amplitude-damping twirl (three thresholds, one uniform).
    pub const DECO_DAMP: u64 = 5;
    /// Pure-dephasing flip.
    pub const DECO_DEPH: u64 = 6;
    /// Gate-error hit decision.
    pub const GATE_HIT: u64 = 7;
    /// Gate-error Pauli selector (consumed only on hit lanes).
    pub const GATE_SEL: u64 = 8;
    /// Readout flip of a measurement.
    pub const READOUT: u64 = 9;
    /// Post-collapse Z-frame randomization of a measurement.
    pub const MEAS_Z: u64 = 10;
    /// Post-reset Z-frame randomization.
    pub const RESET_Z: u64 = 11;

    /// Packs a site id: class in the low byte, unit (qubit or edge
    /// index, < 2²⁴) above it, plan-op index in the high 32 bits.
    #[inline]
    pub fn id(class: u64, op: usize, unit: usize) -> u64 {
        class | ((unit as u64) << 8) | ((op as u64) << 32)
    }
}

/// Resolves the worker-thread count for a fan-out over `jobs` work
/// units: an explicit request wins, then the `CA_SIM_WORKERS`
/// environment variable (used by CI to pin thread counts in
/// determinism checks), then the host's available parallelism. An
/// invalid `CA_SIM_WORKERS` is not silently ignored:
/// `ca_obs::var_parsed` warns once and counts it before the host
/// default applies.
pub fn worker_count(requested: Option<usize>, jobs: usize) -> usize {
    let base = requested
        .or_else(|| ca_obs::var_parsed::<usize>("CA_SIM_WORKERS"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        });
    base.clamp(1, 16).min(jobs.max(1))
}

/// Runs `shots` across worker threads with a *per-shot* seeded RNG
/// (see [`shot_seed`]): shot `i` sees the same stream no matter how
/// shots are distributed over threads. The closure receives the
/// global shot index (used for per-shot Pauli-insertion lookups).
/// Returns per-worker accumulators for the caller to merge. Used by
/// the serial Pauli-frame sampler; the batch engine reproduces the
/// identical per-shot streams 64 lanes at a time.
///
/// `cancel` is polled at every chunk boundary: a cancelled or
/// deadline-expired token stops all workers within one chunk of work
/// and the whole call returns the structured error instead of a
/// partial accumulation.
pub fn map_shots_indexed<Acc: Send>(
    shots: usize,
    seed: u64,
    workers: Option<usize>,
    cancel: Option<&crate::cancel::CancelToken>,
    new_acc: impl Fn() -> Acc + Sync,
    per_shot: impl Fn(usize, &mut rand::rngs::StdRng, &mut Acc) + Sync,
) -> Result<Vec<Acc>, SimError> {
    use rand::SeedableRng;
    let chunks = chunk_ranges(shots);
    let workers = worker_count(workers, chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let chunks = &chunks;
                let new_acc = &new_acc;
                let per_shot = &per_shot;
                scope.spawn(move || -> Result<Acc, SimError> {
                    let mut acc = new_acc();
                    for &(start, len) in chunks.iter().skip(w).step_by(workers) {
                        crate::cancel::check_opt(cancel)?;
                        for i in start..start + len {
                            let mut rng = rand::rngs::StdRng::seed_from_u64(shot_seed(seed, i));
                            per_shot(i, &mut rng, &mut acc);
                        }
                    }
                    Ok(acc)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shot thread")) // ca-lint: allow(panic) -- fail-stop on worker panic; salvaging a partial batch would corrupt results
            .collect()
    })
}

/// Runs `jobs` independent batch jobs across worker threads and
/// returns their outputs **in job order**, regardless of thread count
/// or scheduling. Integer count merges are order-independent anyway;
/// returning in job order additionally makes floating-point
/// accumulations (expectation sums) bit-identical across worker
/// counts, which the batch engine's determinism guarantee relies on.
pub fn map_batches<Out: Send>(
    jobs: usize,
    workers: Option<usize>,
    run: impl Fn(usize) -> Out + Sync,
) -> Vec<Out> {
    let workers = worker_count(workers, jobs);
    let slots: Vec<std::sync::Mutex<Option<Out>>> =
        (0..jobs).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let run = &run;
            scope.spawn(move || {
                for j in (w..jobs).step_by(workers) {
                    let out = run(j);
                    *slots[j].lock().expect("batch slot") = Some(out); // ca-lint: allow(panic) -- fail-stop on poisoned slot; determinism-critical state is unreliable after a panic
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("batch slot").expect("batch output")) // ca-lint: allow(panic) -- fail-stop on poisoned slot; determinism-critical state is unreliable after a panic
        .collect()
}

/// Splits `shots` into fixed-size ranges (machine-independent).
pub fn chunk_ranges(shots: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < shots {
        let len = CHUNK_SHOTS.min(shots - start);
        out.push((start, len));
        start += len;
    }
    out
}

/// The per-chunk RNG seed: decorrelates chunks deterministically.
pub fn chunk_seed(seed: u64, start: usize) -> u64 {
    seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(start as u64 + 1))
}

/// Runs `shots` across scoped worker threads. Chunk boundaries and
/// per-chunk RNG streams are fixed by the seed alone (workers pick up
/// chunks in a strided pattern), so classical counts are bit-for-bit
/// reproducible across machines; floating-point accumulations are
/// reproducible up to summation order. Returns the per-worker
/// accumulators for the caller to merge. The single fan-out used by
/// both engines' `run_counts` and `expect_paulis`.
///
/// `cancel` is polled at every chunk boundary, as in
/// [`map_shots_indexed`].
pub fn map_shots<Acc: Send>(
    shots: usize,
    seed: u64,
    cancel: Option<&crate::cancel::CancelToken>,
    new_acc: impl Fn() -> Acc + Sync,
    per_shot: impl Fn(&mut rand::rngs::StdRng, &mut Acc) + Sync,
) -> Result<Vec<Acc>, SimError> {
    use rand::SeedableRng;
    let chunks = chunk_ranges(shots);
    let workers = worker_count(None, chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let chunks = &chunks;
                let new_acc = &new_acc;
                let per_shot = &per_shot;
                scope.spawn(move || -> Result<Acc, SimError> {
                    let mut acc = new_acc();
                    for &(start, len) in chunks.iter().skip(w).step_by(workers) {
                        crate::cancel::check_opt(cancel)?;
                        let mut rng = rand::rngs::StdRng::seed_from_u64(chunk_seed(seed, start));
                        for _ in 0..len {
                            per_shot(&mut rng, &mut acc);
                        }
                    }
                    Ok(acc)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shot thread")) // ca-lint: allow(panic) -- fail-stop on worker panic; salvaging a partial batch would corrupt results
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    #[test]
    fn plan_orders_segments_before_applies() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 1);
        qc.h(0).ecr(0, 1).measure(1, 0);
        let sc = schedule_asap(&qc, GateDurations::default());
        let plan = ExecutionPlan::build(&sc, &dev, &NoiseConfig::coherent_only()).unwrap();
        // Every Apply/Project op references a valid item; segments cover
        // the full duration.
        for op in &plan.ops {
            match *op {
                PlanOp::Segment(i) => assert!(i < plan.segments.len()),
                PlanOp::Apply { item } | PlanOp::Project { item } => {
                    assert!(item < sc.items.len())
                }
            }
        }
        let total: f64 = plan.segments.iter().map(|s| s.dt()).sum();
        assert!((total - sc.duration).abs() < 1e-9);
        assert_eq!(plan.edge_pairs, vec![(0, 1)]);
        assert_eq!(plan.incident[0], vec![0]);
    }

    #[test]
    fn chunks_cover_all_shots() {
        for shots in [1usize, 7, 100, 1001] {
            let chunks = chunk_ranges(shots);
            let covered: usize = chunks.iter().map(|&(_, len)| len).sum();
            assert_eq!(covered, shots);
            assert_eq!(chunks[0].0, 0);
        }
    }
}

/// Shot-loop parameters shared by the frame engines' expectation and
/// flips entry points: shot count, run seed, worker spread, and an
/// optional cooperative cancel token polled at chunk/strip
/// boundaries.
#[derive(Clone, Copy)]
pub(crate) struct ShotParams<'a> {
    pub shots: usize,
    pub seed: u64,
    pub workers: Option<usize>,
    pub cancel: Option<&'a crate::cancel::CancelToken>,
}

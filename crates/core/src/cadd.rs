//! Context-Aware Dynamical Decoupling — Algorithm 1 of the paper.
//!
//! Four phases:
//! 1. the crosstalk interaction graph comes from the device
//!    (`BuildInteractionGraph` — `ca_device::CrosstalkGraph`);
//! 2. `collect_joint_delays` scans the scheduled circuit for idle
//!    periods ≥ `d_min`, greedily groups those that overlap in time and
//!    are adjacent on the graph, and recursively splits each group at
//!    the widest joint window;
//! 3. `color_graph` assigns each idle qubit a Walsh sequency: qubits
//!    adjacent to a concurrent ECR control may not take color 1 (the
//!    control echo pattern), qubits adjacent to a target may not take
//!    color 3 (the rotary pattern), and crosstalk-adjacent idle qubits
//!    must differ — escalating the Walsh hierarchy on conflicts;
//! 4. `apply_dd_by_color` inserts the pulse sequences.

use crate::dd::{apply_walsh_in_window, pulse_centers};
use crate::walsh::{walsh_pulse_fractions, MAX_SEQUENCY};
use ca_circuit::{Gate, ScheduledCircuit};
use ca_device::{CrosstalkGraph, Device};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The Walsh sequency implicitly realised by an ECR control's echo.
pub const CONTROL_COLOR: usize = 1;
/// The Walsh sequency implicitly realised by an ECR target's rotary.
pub const TARGET_COLOR: usize = 3;

/// A maximal window during which a set of qubits is jointly idle.
#[derive(Clone, Debug, PartialEq)]
pub struct JointWindow {
    /// Window start (ns).
    pub t0: f64,
    /// Window end (ns).
    pub t1: f64,
    /// Qubits idle throughout the window.
    pub qubits: Vec<usize>,
}

impl JointWindow {
    /// Window duration.
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// Per-window coloring produced by phase 3.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Coloring {
    /// `qubit → sequency` per window, parallel to the window list.
    pub assignments: Vec<BTreeMap<usize, usize>>,
}

/// Configuration for the CA-DD pass.
#[derive(Clone, Copy, Debug)]
pub struct CaDdConfig {
    /// Minimum idle duration (ns) to consider decoupling.
    pub d_min: f64,
}

impl Default for CaDdConfig {
    fn default() -> Self {
        Self {
            d_min: crate::dd::DEFAULT_DMIN_NS,
        }
    }
}

/// Phase 2: `CollectJointDelays`.
pub fn collect_joint_delays(
    sc: &ScheduledCircuit,
    graph: &CrosstalkGraph,
    d_min: f64,
) -> Vec<JointWindow> {
    // All per-qubit idle windows at least d_min long.
    let mut pieces: Vec<(usize, f64, f64)> = Vec::new();
    for q in 0..sc.num_qubits {
        for (a, b) in sc.idle_windows(q) {
            if b - a >= d_min {
                pieces.push((q, a, b));
            }
        }
    }
    let mut windows = Vec::new();
    while !pieces.is_empty() {
        // Greedy group: BFS over "overlaps in time AND adjacent (or
        // same qubit) on the crosstalk graph".
        let mut group = vec![pieces.swap_remove(0)];
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = 0;
            while i < pieces.len() {
                let p = pieces[i];
                let joins = group.iter().any(|&(q, a, b)| {
                    let overlap = p.1 < b - 1e-9 && p.2 > a + 1e-9;
                    overlap && (p.0 == q || graph.connected(p.0, q))
                });
                if joins {
                    group.push(pieces.swap_remove(i));
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        // Recursive split of the group at its widest joint window.
        split_group(&mut VecDeque::from(group), d_min, &mut windows);
    }
    windows.sort_by(|a, b| a.t0.total_cmp(&b.t0));
    windows
}

fn split_group(group: &mut VecDeque<(usize, f64, f64)>, d_min: f64, out: &mut Vec<JointWindow>) {
    while !group.is_empty() {
        // Pick the member window covered by the most other members.
        let mut best: Option<(usize, usize)> = None; // (index, score)
        for (i, &(_, a, b)) in group.iter().enumerate() {
            let covering = group
                .iter()
                .filter(|&&(_, a2, b2)| a2 <= a + 1e-9 && b2 >= b - 1e-9)
                .count();
            let better = match best {
                None => true,
                Some((bi, bs)) => {
                    let (_, ba, bb) = group[bi];
                    covering > bs || (covering == bs && (b - a) > (bb - ba) + 1e-9)
                }
            };
            if better {
                best = Some((i, covering));
            }
        }
        let (wi, _) = best.expect("non-empty group"); // ca-lint: allow(panic) -- group is non-empty: loop pushes before selecting best
        let (_, wa, wb) = group[wi];
        let qubits: Vec<usize> = {
            let mut qs: BTreeSet<usize> = BTreeSet::new();
            for &(q, a, b) in group.iter() {
                if a <= wa + 1e-9 && b >= wb - 1e-9 {
                    qs.insert(q);
                }
            }
            qs.into_iter().collect()
        };
        out.push(JointWindow {
            t0: wa,
            t1: wb,
            qubits: qubits.clone(),
        });
        // Split every member overlapping [wa, wb] into before/after
        // residues and iterate on what remains. Members that only
        // *partially* overlap the window keep their overlapping middle
        // as a residue too — otherwise that idle time would silently
        // lose its decoupling.
        let members: Vec<(usize, f64, f64)> = group.drain(..).collect();
        for (q, a, b) in members {
            if b <= wa + 1e-9 || a >= wb - 1e-9 {
                // Untouched by the window.
                group.push_back((q, a, b));
                continue;
            }
            if a < wa - 1e-9 && wa - a >= d_min {
                group.push_back((q, a, wa));
            }
            if b > wb + 1e-9 && b - wb >= d_min {
                group.push_back((q, wb, b));
            }
            let covers = a <= wa + 1e-9 && b >= wb - 1e-9;
            if !covers {
                let (ma, mb) = (a.max(wa), b.min(wb));
                if mb - ma >= d_min {
                    group.push_back((q, ma, mb));
                }
            }
        }
    }
}

/// Phase 3: `ColorGraph`. For each window, returns `qubit → sequency`.
pub fn color_graph(
    windows: &[JointWindow],
    graph: &CrosstalkGraph,
    sc: &ScheduledCircuit,
) -> Coloring {
    let mut coloring = Coloring::default();
    // Assignments already made in earlier (possibly overlapping)
    // windows: `(qubit, t0, t1, color)` — a qubit must also stagger
    // against neighbours decoupled in a concurrent window.
    let mut placed: Vec<(usize, f64, f64, usize)> = Vec::new();
    for w in windows {
        let mut forbidden: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for &q in &w.qubits {
            let entry = forbidden.entry(q).or_default();
            for p in graph.neighbors(q) {
                // Concurrent gates on a crosstalk neighbour constrain q.
                for si in sc.items_on_qubit_in(p, w.t0, w.t1) {
                    match si.instruction.gate {
                        Gate::Ecr => {
                            if si.instruction.qubits[0] == p {
                                entry.insert(CONTROL_COLOR);
                            } else {
                                entry.insert(TARGET_COLOR);
                            }
                        }
                        Gate::Can { .. } | Gate::Rzz(_) | Gate::Cx | Gate::Cz => {
                            // Modeled as a midpoint-echoed gate: both
                            // qubits follow the sequency-1 pattern.
                            entry.insert(CONTROL_COLOR);
                        }
                        _ => {}
                    }
                }
            }
        }
        // Greedy assignment, most-constrained first.
        let mut order: Vec<usize> = w.qubits.clone();
        order.sort_by_key(|q| std::cmp::Reverse(forbidden.get(q).map_or(0, |s| s.len())));
        let mut assigned: BTreeMap<usize, usize> = BTreeMap::new();
        for &q in &order {
            let mut banned: BTreeSet<usize> = forbidden.get(&q).cloned().unwrap_or_default();
            for p in graph.neighbors(q) {
                if let Some(&c) = assigned.get(&p) {
                    banned.insert(c);
                }
                for &(pq, t0, t1, c) in &placed {
                    if pq == p && t0 < w.t1 - 1e-9 && t1 > w.t0 + 1e-9 {
                        banned.insert(c);
                    }
                }
            }
            let color = (1..=MAX_SEQUENCY)
                .find(|k| !banned.contains(k))
                .unwrap_or(1);
            assigned.insert(q, color);
        }
        for (&q, &c) in &assigned {
            placed.push((q, w.t0, w.t1, c));
        }
        coloring.assignments.push(assigned);
    }
    coloring
}

/// Phase 4: `ApplyDDSeqByColor`. Colors that don't fit in their window
/// are demoted to the highest fitting lower color that keeps the
/// constraints (or skipped entirely).
pub fn apply_dd_by_color(
    sc: &ScheduledCircuit,
    windows: &[JointWindow],
    coloring: &Coloring,
    pulse_ns: f64,
) -> ScheduledCircuit {
    let mut out = sc.clone();
    for (w, colors) in windows.iter().zip(coloring.assignments.iter()) {
        for (&q, &k) in colors {
            let fits = pulse_centers(w.t0, w.t1, &walsh_pulse_fractions(k), pulse_ns)
                .map(|c| !c.is_empty())
                .unwrap_or(false);
            if fits {
                apply_walsh_in_window(&mut out, q, w.t0, w.t1, k, pulse_ns);
            }
        }
    }
    out
}

/// The full CA-DD pass: Algorithm 1.
pub fn ca_dd(sc: &ScheduledCircuit, device: &Device, config: CaDdConfig) -> ScheduledCircuit {
    let graph = &device.crosstalk;
    let windows = collect_joint_delays(sc, graph, config.d_min);
    let coloring = color_graph(&windows, graph, sc);
    apply_dd_by_color(sc, &windows, &coloring, device.durations().one_qubit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    fn sched(qc: &Circuit) -> ScheduledCircuit {
        schedule_asap(qc, GateDurations::default())
    }

    #[test]
    fn joint_window_found_for_idle_pair() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.delay(1000.0, 0).delay(1000.0, 1);
        let w = collect_joint_delays(&sched(&qc), &dev.crosstalk, 150.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].qubits, vec![0, 1]);
        assert_eq!((w[0].t0, w[0].t1), (0.0, 1000.0));
    }

    #[test]
    fn staggered_colors_for_idle_pair() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.delay(1000.0, 0).delay(1000.0, 1);
        let sc = sched(&qc);
        let w = collect_joint_delays(&sc, &dev.crosstalk, 150.0);
        let c = color_graph(&w, &dev.crosstalk, &sc);
        let a = c.assignments[0][&0];
        let b = c.assignments[0][&1];
        assert_ne!(a, b, "adjacent idle qubits must differ");
        assert_eq!(a.min(b), 1, "greedy stays low in the hierarchy");
    }

    #[test]
    fn control_spectator_avoids_color_one() {
        // Qubit 0 idles next to qubit 1 = control of ECR(1,2).
        let dev = uniform_device(Topology::line(3), 50.0);
        let mut qc = Circuit::new(3, 0);
        qc.ecr(1, 2);
        let sc = sched(&qc);
        let w = collect_joint_delays(&sc, &dev.crosstalk, 150.0);
        let c = color_graph(&w, &dev.crosstalk, &sc);
        let color0 = c.assignments[0][&0];
        assert_ne!(
            color0, CONTROL_COLOR,
            "spectator must stagger against the control echo"
        );
        assert_eq!(
            color0, 2,
            "lowest allowed color is 2 (the paper's τ/4−X−τ/2−X−τ/4)"
        );
    }

    #[test]
    fn target_spectator_avoids_color_three() {
        // Qubit 2 idles next to qubit 1 = target of ECR(0,1).
        let dev = uniform_device(Topology::line(3), 50.0);
        let mut qc = Circuit::new(3, 0);
        qc.ecr(0, 1);
        let sc = sched(&qc);
        let w = collect_joint_delays(&sc, &dev.crosstalk, 150.0);
        let c = color_graph(&w, &dev.crosstalk, &sc);
        let color2 = c.assignments[0][&2];
        assert_ne!(color2, TARGET_COLOR);
        assert_eq!(color2, 1, "τ/2−X−τ/2−X staggers against the rotary");
    }

    #[test]
    fn nnn_collision_forces_three_colors() {
        // Line 0−1−2 with an NNN collision edge (0,2): triangle in the
        // crosstalk graph → three distinct colors.
        let topo = Topology::line(3);
        let mut dev = uniform_device(topo, 50.0);
        dev.calibration.nnn.push(ca_device::NnnTerm {
            i: 0,
            j: 1,
            k: 2,
            zz_khz: 10.0,
        });
        let dev = ca_device::Device::new("collision", dev.topology, dev.calibration);
        let mut qc = Circuit::new(3, 0);
        qc.delay(2000.0, 0).delay(2000.0, 1).delay(2000.0, 2);
        let sc = sched(&qc);
        let w = collect_joint_delays(&sc, &dev.crosstalk, 150.0);
        let c = color_graph(&w, &dev.crosstalk, &sc);
        let set: BTreeSet<usize> = c.assignments[0].values().copied().collect();
        assert_eq!(set.len(), 3, "triangle needs 3 Walsh levels: {set:?}");
    }

    #[test]
    fn recursive_split_handles_offset_windows() {
        // Qubit 0 idles [0, 2000]; qubit 1 idles [1000, 3000] — the
        // joint window is [1000, 2000] plus residues.
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.delay(2000.0, 0);
        qc.sx(1); // occupy briefly so the idle starts later
        qc.delay(1000.0, 1);
        // Build a schedule manually to control the offsets:
        let sc = sched(&qc);
        let w = collect_joint_delays(&sc, &dev.crosstalk, 150.0);
        // Expect a window containing both qubits somewhere.
        assert!(w.iter().any(|jw| jw.qubits.len() == 2), "windows: {w:?}");
        // All emitted windows at least d_min long.
        for jw in &w {
            assert!(jw.duration() >= 150.0 - 1e-9);
        }
    }

    #[test]
    fn ca_dd_inserts_staggered_pulses_for_idle_pair() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.delay(2000.0, 0).delay(2000.0, 1);
        let out = ca_dd(&sched(&qc), &dev, CaDdConfig::default());
        let t0: Vec<f64> = out
            .items
            .iter()
            .filter(|si| si.instruction.gate == Gate::X && si.instruction.acts_on(0))
            .map(|si| si.t0)
            .collect();
        let t1: Vec<f64> = out
            .items
            .iter()
            .filter(|si| si.instruction.gate == Gate::X && si.instruction.acts_on(1))
            .map(|si| si.t0)
            .collect();
        assert!(!t0.is_empty() && !t1.is_empty());
        assert_ne!(t0, t1, "CA-DD must stagger neighbours");
    }

    #[test]
    fn ca_dd_leaves_active_qubits_alone() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.ecr(0, 1);
        let out = ca_dd(&sched(&qc), &dev, CaDdConfig::default());
        assert_eq!(
            out.items
                .iter()
                .filter(|si| si.instruction.gate == Gate::X)
                .count(),
            0,
            "no idle windows → no pulses"
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    #[test]
    fn isolated_qubit_still_gets_z_protection() {
        // A lone idle qubit with no idle neighbours gets a sequence
        // anyway (suppresses its single-qubit Z / stochastic noise).
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.x(1).x(1).x(1).x(1).x(1).x(1).x(1).x(1).x(1).x(1); // q1 busy
        qc.delay(400.0, 0);
        let sc = schedule_asap(&qc, GateDurations::default());
        let out = ca_dd(&sc, &dev, CaDdConfig::default());
        let pulses = out
            .items
            .iter()
            .filter(|si| si.instruction.gate == ca_circuit::Gate::X && si.instruction.acts_on(0))
            .count();
        assert!(pulses >= 2 && pulses % 2 == 0, "{pulses} pulses");
    }

    #[test]
    fn too_short_windows_skipped_entirely() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.delay(100.0, 0).delay(100.0, 1);
        let sc = schedule_asap(&qc, GateDurations::default());
        let out = ca_dd(&sc, &dev, CaDdConfig::default());
        assert_eq!(out.items.len(), sc.items.len());
    }

    #[test]
    fn overlapping_windows_respect_neighbor_colors() {
        // Qubit 0 idles [0, 3000]; qubit 1 idles [500, 3000] after a
        // busy prefix. Their windows differ but overlap: colors must
        // still differ on the overlap.
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.delay(3000.0, 0);
        for _ in 0..12 {
            qc.x(1); // 480 ns busy prefix
        }
        qc.delay(2520.0, 1);
        let sc = schedule_asap(&qc, GateDurations::default());
        let windows = collect_joint_delays(&sc, &dev.crosstalk, 150.0);
        let coloring = color_graph(&windows, &dev.crosstalk, &sc);
        for (w, colors) in windows.iter().zip(coloring.assignments.iter()) {
            if colors.len() == 2 {
                assert_ne!(colors[&0], colors[&1], "window {w:?}");
            }
        }
        // Any pair of overlapping windows with the two qubits apart
        // must also disagree.
        for (i, (wa, ca)) in windows.iter().zip(coloring.assignments.iter()).enumerate() {
            for (wb, cb) in windows.iter().zip(coloring.assignments.iter()).skip(i + 1) {
                let overlap = wa.t0 < wb.t1 - 1e-9 && wa.t1 > wb.t0 + 1e-9;
                if overlap {
                    if let (Some(&c0), Some(&c1)) = (ca.get(&0), cb.get(&1)) {
                        assert_ne!(c0, c1, "cross-window conflict: {wa:?} vs {wb:?}");
                    }
                    if let (Some(&c1), Some(&c0)) = (ca.get(&1), cb.get(&0)) {
                        assert_ne!(c1, c0, "cross-window conflict: {wa:?} vs {wb:?}");
                    }
                }
            }
        }
    }
}

//! Dynamical-decoupling insertion machinery and the context-unaware
//! baseline passes (the paper's "DD", "aligned DD", and "staggered DD"
//! comparators).
//!
//! All passes operate on a `ScheduledCircuit`: pulses are placed at
//! exact times inside idle windows, never altering any other
//! instruction's timing.

use crate::walsh::{walsh_pulse_fractions, MAX_SEQUENCY};
use ca_circuit::{Gate, Instruction, ScheduledCircuit, ScheduledInstruction};
use ca_device::Device;

/// Default minimum idle duration (ns) worth decoupling — windows
/// shorter than this cannot fit two pulses with margins.
pub const DEFAULT_DMIN_NS: f64 = 150.0;

/// Computes pulse center times for the given fractional positions in
/// window `[a, b]`, requiring that pulses of width `pulse_ns` fit
/// without overlapping each other or the window edges. Returns `None`
/// when they do not fit.
pub fn pulse_centers(a: f64, b: f64, fractions: &[f64], pulse_ns: f64) -> Option<Vec<f64>> {
    let d = b - a;
    if d <= 0.0 {
        return None;
    }
    let mut centers = Vec::with_capacity(fractions.len());
    for &f in fractions {
        let c = (a + f * d).clamp(a + pulse_ns / 2.0, b - pulse_ns / 2.0);
        centers.push(c);
    }
    // Enforce spacing.
    for w in centers.windows(2) {
        if w[1] - w[0] < pulse_ns - 1e-9 {
            return None;
        }
    }
    if centers.is_empty() || centers[0] - a < pulse_ns / 2.0 - 1e-9 {
        return if centers.is_empty() {
            Some(centers)
        } else {
            None
        };
    }
    Some(centers)
}

/// Inserts X pulses on `q` centered at the given times.
pub fn insert_pulses(sc: &mut ScheduledCircuit, q: usize, centers: &[f64], pulse_ns: f64) {
    for &c in centers {
        sc.items.push(ScheduledInstruction {
            instruction: Instruction::new(Gate::X, [q]),
            t0: c - pulse_ns / 2.0,
            duration: pulse_ns,
        });
    }
    sc.items.sort_by(|x, y| x.t0.total_cmp(&y.t0));
}

/// Applies the sequency-`k` Walsh sequence to `q` over `[a, b]`.
/// Returns true when the sequence fit and was inserted.
pub fn apply_walsh_in_window(
    sc: &mut ScheduledCircuit,
    q: usize,
    a: f64,
    b: f64,
    k: usize,
    pulse_ns: f64,
) -> bool {
    let fractions = walsh_pulse_fractions(k);
    match pulse_centers(a, b, &fractions, pulse_ns) {
        Some(centers) if !centers.is_empty() => {
            insert_pulses(sc, q, &centers, pulse_ns);
            true
        }
        _ => false,
    }
}

/// The highest sequency whose pulses fit in a window of length `d`.
pub fn max_fitting_sequency(d: f64, pulse_ns: f64) -> usize {
    let mut best = 0;
    for k in 1..=MAX_SEQUENCY {
        let need = (crate::walsh::pulse_count(k) as f64 + 0.5) * pulse_ns;
        if need <= d {
            best = k;
        }
    }
    best
}

/// Context-unaware "DD" baseline (uniform insertion, as in large-scale
/// prior work): every idle window of every qubit longer than `d_min`
/// receives the *same* symmetric X2 sequence (pulses at 1/4 and 3/4 of
/// the window). Jointly idle neighbours therefore end up aligned and
/// their mutual ZZ survives — the failure mode of Fig. 3c.
pub fn uniform_dd(sc: &ScheduledCircuit, device: &Device, d_min: f64) -> ScheduledCircuit {
    let mut out = sc.clone();
    let pulse = device.durations().one_qubit;
    for q in 0..sc.num_qubits {
        for (a, b) in sc.idle_windows(q) {
            if b - a >= d_min {
                apply_walsh_in_window(&mut out, q, a, b, 2, pulse);
            }
        }
    }
    out
}

/// Context-unaware *staggered* DD: a static 2-coloring of the
/// crosstalk graph (bipartite BFS, parity fallback) assigns sequency 2
/// to color 0 and sequency 1 to color 1. This fixes jointly idle
/// pairs but ignores gate contexts: a spectator colored with the same
/// pattern as a neighbouring ECR echo re-exposes their ZZ.
pub fn staggered_dd(sc: &ScheduledCircuit, device: &Device, d_min: f64) -> ScheduledCircuit {
    let colors = bipartite_coloring(device);
    let mut out = sc.clone();
    let pulse = device.durations().one_qubit;
    for q in 0..sc.num_qubits {
        let k = if colors[q] == 0 { 2 } else { 1 };
        for (a, b) in sc.idle_windows(q) {
            if b - a >= d_min {
                apply_walsh_in_window(&mut out, q, a, b, k, pulse);
            }
        }
    }
    out
}

/// BFS 2-coloring of the crosstalk graph; odd cycles fall back to
/// qubit-index parity for the offending nodes.
pub fn bipartite_coloring(device: &Device) -> Vec<usize> {
    let n = device.num_qubits();
    let mut color = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != usize::MAX {
            continue;
        }
        color[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(q) = queue.pop_front() {
            for p in device.crosstalk.neighbors(q) {
                if color[p] == usize::MAX {
                    color[p] = 1 - color[q];
                    queue.push_back(p);
                } else if color[p] == color[q] {
                    // Odd cycle: fall back to parity for this node.
                    color[p] = p % 2;
                }
            }
        }
    }
    color
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::{schedule_asap, Circuit, GateDurations};
    use ca_device::{uniform_device, Topology};

    fn sched(qc: &Circuit) -> ScheduledCircuit {
        schedule_asap(qc, GateDurations::default())
    }

    #[test]
    fn pulse_centers_fit_and_clamp() {
        let c = pulse_centers(0.0, 1000.0, &[0.5, 1.0], 40.0).unwrap();
        assert_eq!(c, vec![500.0, 980.0]);
        // Too short for two pulses.
        assert!(pulse_centers(0.0, 50.0, &[0.5, 1.0], 40.0).is_none());
    }

    #[test]
    fn uniform_dd_inserts_aligned_pulses() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.delay(1000.0, 0).delay(1000.0, 1);
        let out = uniform_dd(&sched(&qc), &dev, DEFAULT_DMIN_NS);
        let xs: Vec<&ScheduledInstruction> = out
            .items
            .iter()
            .filter(|si| si.instruction.gate == Gate::X)
            .collect();
        assert_eq!(xs.len(), 4, "two pulses per qubit");
        // Aligned: same times on both qubits.
        let t0: Vec<f64> = xs
            .iter()
            .filter(|si| si.instruction.acts_on(0))
            .map(|si| si.t0)
            .collect();
        let t1: Vec<f64> = xs
            .iter()
            .filter(|si| si.instruction.acts_on(1))
            .map(|si| si.t0)
            .collect();
        assert_eq!(t0, t1);
    }

    #[test]
    fn staggered_dd_differs_between_neighbors() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.delay(1000.0, 0).delay(1000.0, 1);
        let out = staggered_dd(&sched(&qc), &dev, DEFAULT_DMIN_NS);
        let t0: Vec<f64> = out
            .items
            .iter()
            .filter(|si| si.instruction.gate == Gate::X && si.instruction.acts_on(0))
            .map(|si| si.t0)
            .collect();
        let t1: Vec<f64> = out
            .items
            .iter()
            .filter(|si| si.instruction.gate == Gate::X && si.instruction.acts_on(1))
            .map(|si| si.t0)
            .collect();
        assert_ne!(t0, t1, "staggered pulses must not align");
    }

    #[test]
    fn short_windows_left_alone() {
        let dev = uniform_device(Topology::line(1), 0.0);
        let mut qc = Circuit::new(1, 0);
        qc.delay(100.0, 0);
        let out = uniform_dd(&sched(&qc), &dev, DEFAULT_DMIN_NS);
        assert_eq!(
            out.items
                .iter()
                .filter(|si| si.instruction.gate == Gate::X)
                .count(),
            0
        );
    }

    #[test]
    fn bipartite_coloring_proper_on_even_ring() {
        let dev = uniform_device(Topology::ring(12), 50.0);
        let colors = bipartite_coloring(&dev);
        for e in &dev.crosstalk.edges {
            assert_ne!(colors[e.a], colors[e.b]);
        }
    }

    #[test]
    fn max_fitting_sequency_grows_with_window() {
        assert_eq!(max_fitting_sequency(50.0, 40.0), 0);
        assert!(max_fitting_sequency(500.0, 40.0) >= 3);
        assert!(max_fitting_sequency(10_000.0, 40.0) >= MAX_SEQUENCY - 1);
    }

    #[test]
    fn insertion_preserves_other_items() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.sx(0);
        qc.barrier(Vec::<usize>::new());
        qc.ecr(0, 1);
        qc.barrier(Vec::<usize>::new());
        qc.delay(1000.0, 0).delay(1000.0, 1);
        let base = sched(&qc);
        let out = uniform_dd(&base, &dev, DEFAULT_DMIN_NS);
        for si in &base.items {
            assert!(
                out.items
                    .iter()
                    .any(|o| o.instruction == si.instruction && o.t0 == si.t0),
                "original item moved: {:?}",
                si.instruction.gate
            );
        }
        assert_eq!(out.duration, base.duration);
    }
}

//! Context-Aware Error Compensation — Algorithm 2 of the paper.
//!
//! The pass walks a stratified (and typically twirled) circuit layer
//! by layer, accumulating the coherent Z/ZZ phases that the device
//! calibration predicts for each context of Fig. 3:
//!
//! * jointly idle pair → full `U11` (Eq. 2);
//! * spectator of an ECR control/target → single-qubit Z only (the
//!   gate echo refocuses the ZZ);
//! * two active qubits with *aligned* echo patterns (control–control,
//!   target–target, canonical–canonical) → ZZ survives (case IV);
//! * Stark shifts on idle neighbours of driven qubits.
//!
//! Single-qubit compensations are flushed immediately as **virtual**
//! `Rz` gates (zero duration, zero error). Two-qubit compensations are
//! carried forward — commuting through Pauli twirl layers with the
//! Algorithm-2 sign rule, flipping under ECR-control conjugation — and
//! absorbed for free into the γ angle of a canonical/`Rzz` gate or
//! converted to a virtual `Rz` behind a CNOT. Only when a gate blocks
//! propagation is an explicit pulse-stretched `Rzz` emitted.

use ca_circuit::canonical::absorb_rzz_into_can;
use ca_circuit::{Gate, Instruction, Layer, LayerKind, LayeredCircuit};
use ca_device::{phase_rad, Device};
use std::collections::BTreeMap;

/// Configuration of the CA-EC pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaEcConfig {
    /// When set, only compensate the error contexts dynamical
    /// decoupling cannot address (aligned active–active ZZ, case IV) —
    /// the mode used by the combined CA-EC+DD strategy (Sec. V-E).
    pub only_undecoupled: bool,
    /// When set, skip single-qubit Z compensation and only handle ZZ —
    /// used when combining EC with aligned DD, which already removes
    /// the local Z terms (Fig. 3c's "aligned DD + error compensation").
    pub zz_only: bool,
    /// Ablation: never absorb into canonical/Rzz gates — always emit
    /// explicit pulse-stretched compensations (shows the cost the
    /// zero-overhead absorption saves).
    pub forbid_absorption: bool,
    /// Ablation: skip the Algorithm-2 commute/anti-commute sign
    /// tracking through Pauli layers (shows that compensations applied
    /// with the wrong sign *add* error under twirling).
    pub ignore_twirl_signs: bool,
    /// Minimum |θ| (radians) for which a *blocked* ZZ compensation is
    /// worth an explicit pulse-stretched gate; smaller pendings are
    /// dropped. Free absorptions and virtual Rz are never thresholded.
    /// 0 uses [`DEFAULT_INSERT_THRESHOLD_RAD`].
    pub insert_threshold_rad: f64,
}

/// Default minimum angle for explicit compensation gates: below this
/// the inserted gate's own (duration-scaled) error exceeds the error
/// it removes.
pub const DEFAULT_INSERT_THRESHOLD_RAD: f64 = 0.03;

/// Statistics of what the pass did (used by tests and EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CaEcReport {
    /// ZZ compensations absorbed into canonical/Rzz gates for free.
    pub absorbed: usize,
    /// ZZ compensations converted to virtual Rz behind a CNOT.
    pub converted_cx: usize,
    /// Explicit pulse-stretched Rzz gates inserted.
    pub inserted: usize,
    /// Virtual Rz compensations emitted.
    pub virtual_rz: usize,
    /// Sign flips applied while commuting through twirl Paulis.
    pub sign_flips: usize,
    /// Blocked compensations below the insertion threshold, dropped
    /// because an explicit gate would cost more than the error.
    pub dropped: usize,
}

/// The per-qubit echo pattern of a layer, matching the simulator's
/// toggling-frame signs: two qubits accrue mutual ZZ during a layer iff
/// their patterns are *equal* (Walsh orthogonality otherwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pattern {
    /// Constant +1 frame: idle, 1q-driven, measuring.
    Flat,
    /// Sequency-1 echo: ECR control, canonical-gate qubits.
    Seq1,
    /// Sequency-3 rotary: ECR target.
    Seq3,
}

fn layer_patterns(layer: &Layer, n: usize) -> Vec<Pattern> {
    let mut out = vec![Pattern::Flat; n];
    for instr in &layer.instructions {
        match instr.gate {
            Gate::Ecr => {
                out[instr.qubits[0]] = Pattern::Seq1;
                out[instr.qubits[1]] = Pattern::Seq3;
            }
            Gate::Can { .. } | Gate::Rzz(_) | Gate::Cx | Gate::Cz => {
                for &q in &instr.qubits {
                    out[q] = Pattern::Seq1;
                }
            }
            _ => {}
        }
    }
    out
}

fn layer_duration(layer: &Layer, device: &Device) -> f64 {
    layer
        .instructions
        .iter()
        .map(|i| device.durations().duration_of(&i.gate))
        .fold(0.0, f64::max)
}

fn pair_key(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

/// Runs CA-EC over a layered circuit. Returns the compensated circuit
/// and a report of the actions taken.
pub fn ca_ec(
    layered: &LayeredCircuit,
    device: &Device,
    config: CaEcConfig,
) -> (LayeredCircuit, CaEcReport) {
    let n = layered.num_qubits;
    let threshold = if config.insert_threshold_rad > 0.0 {
        config.insert_threshold_rad
    } else {
        DEFAULT_INSERT_THRESHOLD_RAD
    };
    let mut report = CaEcReport::default();
    // Pending two-qubit *error* angles: error = Rzz(θ) awaiting its
    // inverse.
    let mut pend_zz: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut out = LayeredCircuit {
        num_qubits: n,
        num_clbits: layered.num_clbits,
        layers: Vec::new(),
    };

    for layer in &layered.layers {
        let mut current = layer.clone();
        let mut pre_insert: Vec<Instruction> = Vec::new();
        let mut post_virtual: Vec<Instruction> = Vec::new();

        // --- Phase A: propagate / absorb pending ZZ compensations ----
        pend_zz.retain(|_, th| th.abs() > 1e-15);
        let keys: Vec<(usize, usize)> = pend_zz.keys().copied().collect();
        for key in keys {
            let theta = pend_zz[&key];
            let (i, j) = key;
            let mut resolved = false;
            match current.kind {
                LayerKind::TwoQubit => {
                    // Gate exactly on the pair?
                    if let Some(pos) = current
                        .instructions
                        .iter()
                        .position(|g| pair_key(g.qubits[0], g.qubits[1]) == key)
                    {
                        let g = current.instructions[pos].clone();
                        match g.gate {
                            Gate::Can { .. } | Gate::Rzz(_) if !config.forbid_absorption => {
                                // Free absorption into the γ/ZZ angle.
                                current.instructions[pos].gate =
                                    absorb_rzz_into_can(g.gate, -theta);
                                report.absorbed += 1;
                                resolved = true;
                            }
                            Gate::Cx => {
                                // CX·Rzz(θ) = Rz(θ)_target·CX: compensate
                                // with a free virtual Rz(−θ) afterwards.
                                post_virtual
                                    .push(Instruction::new(Gate::Rz(-theta), [g.qubits[1]]));
                                report.converted_cx += 1;
                                resolved = true;
                            }
                            _ => {
                                // ECR or other: conjugation leaves the
                                // Z/ZZ dictionary → compensate first.
                                if theta.abs() >= threshold {
                                    pre_insert.push(Instruction::new(Gate::Rzz(-theta), [i, j]));
                                    report.inserted += 1;
                                } else {
                                    report.dropped += 1;
                                }
                                resolved = true;
                            }
                        }
                    } else {
                        // Gates touching one qubit of the pair?
                        for instr in &current.instructions {
                            let on_i = instr.acts_on(i);
                            let on_j = instr.acts_on(j);
                            if !(on_i || on_j) {
                                continue;
                            }
                            let q = if on_i { i } else { j };
                            match instr.gate {
                                Gate::Ecr if instr.qubits[0] == q => {
                                    // Control: Z_c → −Z_c.
                                    if let Some(v) = pend_zz.get_mut(&key) {
                                        *v = -*v;
                                    }
                                    report.sign_flips += 1;
                                }
                                Gate::Cx if instr.qubits[0] == q => {
                                    // CX control: Z_c invariant.
                                }
                                Gate::Cz => {
                                    // CZ is diagonal: Z invariant.
                                }
                                _ => {
                                    // ECR target, CX target, Can, …:
                                    // propagation leaves the dictionary.
                                    if pend_zz[&key].abs() >= threshold {
                                        pre_insert.push(Instruction::new(
                                            Gate::Rzz(-pend_zz[&key]),
                                            [i, j],
                                        ));
                                        report.inserted += 1;
                                    } else {
                                        report.dropped += 1;
                                    }
                                    resolved = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                LayerKind::OneQubit => {
                    for instr in &current.instructions {
                        let q = instr.qubits[0];
                        if q != i && q != j {
                            continue;
                        }
                        match instr.gate {
                            Gate::I
                            | Gate::Z
                            | Gate::S
                            | Gate::Sdg
                            | Gate::T
                            | Gate::Tdg
                            | Gate::Rz(_) => {}
                            Gate::X | Gate::Y => {
                                if !config.ignore_twirl_signs {
                                    if let Some(v) = pend_zz.get_mut(&key) {
                                        *v = -*v;
                                    }
                                    report.sign_flips += 1;
                                }
                            }
                            _ => {
                                if pend_zz[&key].abs() >= threshold {
                                    pre_insert
                                        .push(Instruction::new(Gate::Rzz(-pend_zz[&key]), [i, j]));
                                    report.inserted += 1;
                                } else {
                                    report.dropped += 1;
                                }
                                resolved = true;
                                break;
                            }
                        }
                    }
                }
                LayerKind::Measurement | LayerKind::Other => {
                    // Measurement of either qubit destroys the chance
                    // to compensate coherently afterwards: flush now.
                    // Delays and diagonal gates commute and are ignored.
                    let touches = current.instructions.iter().any(|g| {
                        (g.acts_on(i) || g.acts_on(j))
                            && !matches!(g.gate, Gate::Delay(_))
                            && !g.gate.is_diagonal()
                    });
                    if touches {
                        if pend_zz[&key].abs() >= threshold {
                            pre_insert.push(Instruction::new(Gate::Rzz(-pend_zz[&key]), [i, j]));
                            report.inserted += 1;
                        } else {
                            report.dropped += 1;
                        }
                        resolved = true;
                    }
                }
            }
            if resolved {
                pend_zz.remove(&key);
            }
        }

        // --- Phase B: accumulate this layer's errors ------------------
        // `Other` layers (explicit delays, conditionals) count too:
        // a Ramsey idle layer is exactly where case-I errors accrue.
        let tau = layer_duration(&current, device);
        let mut err_z = vec![0.0f64; n];
        if tau > 0.0
            && matches!(
                current.kind,
                LayerKind::OneQubit | LayerKind::TwoQubit | LayerKind::Other
            )
        {
            let patterns = layer_patterns(&current, n);
            let same_gate = |a: usize, b: usize| {
                current
                    .instructions
                    .iter()
                    .any(|g| g.qubits.len() == 2 && g.acts_on(a) && g.acts_on(b))
            };
            for e in &device.crosstalk.edges {
                let (i, j) = (e.a, e.b);
                if same_gate(i, j) {
                    continue;
                }
                let theta = phase_rad(e.zz_khz, tau);
                let (pi, pj) = (patterns[i], patterns[j]);
                let both_active = pi != Pattern::Flat && pj != Pattern::Flat;
                if pi == pj && theta.abs() > 1e-15 {
                    // Aligned patterns: ZZ survives.
                    if !config.only_undecoupled || both_active {
                        *pend_zz.entry(pair_key(i, j)).or_insert(0.0) += theta;
                    }
                }
                if !config.only_undecoupled && !config.zz_only {
                    if pi == Pattern::Flat {
                        err_z[i] -= theta;
                    }
                    if pj == Pattern::Flat {
                        err_z[j] -= theta;
                    }
                }
            }
            if !config.only_undecoupled && !config.zz_only {
                // Stark shifts on idle neighbours of driven qubits.
                for instr in &current.instructions {
                    let driven: Vec<usize> = match instr.gate {
                        Gate::Ecr => vec![instr.qubits[0]],
                        g if g.num_qubits() == 1 && !g.is_virtual() && g.is_unitary() => {
                            vec![instr.qubits[0]]
                        }
                        _ => vec![],
                    };
                    for d in driven {
                        for s in device.crosstalk.neighbors(d) {
                            if patterns[s] == Pattern::Flat && current.is_idle(s) {
                                err_z[s] += phase_rad(device.calibration.stark_on(d, s), tau);
                            }
                        }
                    }
                }
            }
        }

        // --- Phase C: emit --------------------------------------------
        if !pre_insert.is_empty() {
            out.layers.push(Layer {
                kind: LayerKind::TwoQubit,
                instructions: pre_insert,
            });
        }
        out.layers.push(current);
        let mut virtuals = post_virtual;
        for (q, &z) in err_z.iter().enumerate() {
            if z.abs() > 1e-15 {
                virtuals.push(Instruction::new(Gate::Rz(-z), [q]));
                report.virtual_rz += 1;
            }
        }
        if !virtuals.is_empty() {
            out.layers.push(Layer {
                kind: LayerKind::OneQubit,
                instructions: virtuals,
            });
        }
    }

    // Final flush of anything still pending.
    let mut tail = Vec::new();
    for (&(i, j), &theta) in &pend_zz {
        if theta.abs() >= threshold {
            tail.push(Instruction::new(Gate::Rzz(-theta), [i, j]));
            report.inserted += 1;
        } else if theta.abs() > 1e-15 {
            report.dropped += 1;
        }
    }
    if !tail.is_empty() {
        out.layers.push(Layer {
            kind: LayerKind::TwoQubit,
            instructions: tail,
        });
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::{stratify, Circuit};
    use ca_device::{uniform_device, Topology};

    fn dev(n: usize, zz: f64) -> Device {
        uniform_device(Topology::line(n), zz)
    }

    #[test]
    fn idle_pair_z_compensated_virtually() {
        // Two qubits idle while a third pair runs an ECR layer.
        let device = dev(4, 100.0);
        let mut qc = Circuit::new(4, 0);
        qc.ecr(0, 1); // qubits 2,3 jointly idle
        let (out, report) = ca_ec(&stratify(&qc), &device, CaEcConfig::default());
        assert!(report.virtual_rz > 0, "virtual Rz compensations emitted");
        // The idle pair (2,3) has an aligned (Flat,Flat) pattern → a ZZ
        // compensation must appear (inserted at end since no absorber).
        assert!(report.inserted >= 1, "report: {report:?}");
        let has_rzz = out
            .layers
            .iter()
            .flat_map(|l| l.instructions.iter())
            .any(|i| matches!(i.gate, Gate::Rzz(_)) && i.acts_on(2) && i.acts_on(3));
        assert!(has_rzz);
    }

    #[test]
    fn zz_comp_absorbed_into_canonical_gate() {
        let device = dev(2, 100.0);
        let mut qc = Circuit::new(2, 0);
        // Layer 1: 1q gates → idle-idle error accrues on edge (0,1)?
        // No: 1q layers have both qubits Flat → error accrues there too.
        qc.sx(0).sx(1);
        qc.can(0.3, 0.3, 0.3, 0, 1);
        let (out, report) = ca_ec(&stratify(&qc), &device, CaEcConfig::default());
        assert_eq!(report.absorbed, 1, "report: {report:?}");
        assert_eq!(report.inserted, 0);
        // The canonical gate's γ must have shifted by +θ/2 (absorbing
        // Rzz(−θ)).
        let g = out
            .layers
            .iter()
            .flat_map(|l| l.instructions.iter())
            .find(|i| matches!(i.gate, Gate::Can { .. }))
            .unwrap();
        if let Gate::Can { gamma, .. } = g.gate {
            let tau = 40.0; // 1q layer duration
            let theta = ca_device::phase_rad(100.0, tau);
            assert!((gamma - (0.3 + theta / 2.0)).abs() < 1e-12, "gamma {gamma}");
        }
    }

    #[test]
    fn control_spectator_gets_z_only() {
        // ECR(0,1) with spectator 2 adjacent to target 1: pattern of 1
        // is Seq3, of 2 is Flat → no ZZ pending on (1,2), but Z on 2.
        let device = dev(3, 100.0);
        let mut qc = Circuit::new(3, 0);
        qc.ecr(0, 1);
        let (out, report) = ca_ec(&stratify(&qc), &device, CaEcConfig::default());
        assert_eq!(
            report.inserted, 0,
            "spectator ZZ is refocused by the gate echo"
        );
        assert!(report.virtual_rz > 0);
        let rz_on_2 = out
            .layers
            .iter()
            .flat_map(|l| l.instructions.iter())
            .any(|i| matches!(i.gate, Gate::Rz(_)) && i.acts_on(2));
        assert!(rz_on_2);
    }

    #[test]
    fn case_iv_control_control_zz_detected() {
        // Two parallel ECRs with adjacent controls: 1—2 edge between
        // controls of ECR(1,0) and ECR(2,3): both Seq1 → ZZ survives.
        let device = dev(4, 100.0);
        let mut qc = Circuit::new(4, 0);
        qc.ecr(1, 0).ecr(2, 3);
        let (_, report) = ca_ec(&stratify(&qc), &device, CaEcConfig::default());
        assert!(
            report.inserted >= 1,
            "case-IV ZZ must be compensated: {report:?}"
        );
    }

    #[test]
    fn only_undecoupled_skips_idle_contexts() {
        let device = dev(4, 100.0);
        let mut qc = Circuit::new(4, 0);
        qc.ecr(0, 1); // idle pair (2,3) would normally be compensated
        let (_, report) = ca_ec(
            &stratify(&qc),
            &device,
            CaEcConfig {
                only_undecoupled: true,
                ..CaEcConfig::default()
            },
        );
        assert_eq!(report.inserted, 0);
        assert_eq!(report.virtual_rz, 0);
    }

    #[test]
    fn only_undecoupled_still_fixes_case_iv() {
        let device = dev(4, 100.0);
        let mut qc = Circuit::new(4, 0);
        qc.ecr(1, 0).ecr(2, 3);
        let (_, report) = ca_ec(
            &stratify(&qc),
            &device,
            CaEcConfig {
                only_undecoupled: true,
                ..CaEcConfig::default()
            },
        );
        assert!(report.inserted >= 1);
    }

    #[test]
    fn pauli_twirl_flips_sign() {
        // Accrue ZZ on the idle pair (2,3), pass it through an X on
        // qubit 2 (anticommutes with Z), then absorb into a Can gate;
        // the absorbed angle must carry the flipped sign.
        let device = dev(4, 100.0);
        let mut qc = Circuit::new(4, 0);
        qc.ecr(0, 1); // 2,3 idle for 480 ns → +θ pending on (2,3)
        qc.x(2).i(3); // "twirl" layer: anticommutes on one qubit
        qc.can(0.0, 0.0, 0.5, 2, 3);
        let (out, report) = ca_ec(&stratify(&qc), &device, CaEcConfig::default());
        assert_eq!(report.sign_flips, 1);
        assert_eq!(report.absorbed, 1);
        let g = out
            .layers
            .iter()
            .flat_map(|l| l.instructions.iter())
            .find(|i| matches!(i.gate, Gate::Can { .. }))
            .unwrap();
        if let Gate::Can { gamma, .. } = g.gate {
            // 2q layer (480 ns) plus the 1q layer (40 ns) accrue +θ
            // each; X flips the 2q part... the 1q-layer error accrues
            // *after* the X, so: total pending = −θ_2q + θ_1q; the
            // compensation Rzz(+θ_2q − θ_1q) shifts γ by −(θ_2q−θ_1q)/2.
            let th2 = ca_device::phase_rad(100.0, 480.0);
            let th1 = ca_device::phase_rad(100.0, 40.0);
            let expect = 0.5 - -((-th2 + th1) / 2.0);
            // absorb_rzz_into_can(g, −θ_pend): γ → γ − (−θ_pend)/2 = γ + θ_pend/2
            let expect2 = 0.5 + (-th2 + th1) / 2.0;
            assert!(
                (gamma - expect2).abs() < 1e-12,
                "gamma {gamma}, expect {expect2} (alt {expect})"
            );
        }
    }

    #[test]
    fn cx_conversion_to_virtual_rz() {
        let device = dev(2, 100.0);
        let mut qc = Circuit::new(2, 0);
        qc.sx(0).sx(1); // 1q layer accrues idle-idle ZZ
        qc.cx(0, 1);
        let (out, report) = ca_ec(&stratify(&qc), &device, CaEcConfig::default());
        assert_eq!(report.converted_cx, 1, "{report:?}");
        assert_eq!(report.inserted, 0);
        // A virtual Rz on the CX target must appear after the CX layer.
        let mut seen_cx = false;
        let mut rz_after = false;
        for l in &out.layers {
            for i in &l.instructions {
                if i.gate == Gate::Cx {
                    seen_cx = true;
                } else if seen_cx && matches!(i.gate, Gate::Rz(_)) && i.acts_on(1) {
                    rz_after = true;
                }
            }
        }
        assert!(rz_after);
    }

    #[test]
    fn blocked_by_hadamard_inserts_rzz() {
        // Strong enough coupling that the blocked pending clears the
        // insertion threshold.
        let device = dev(2, 400.0);
        let mut qc = Circuit::new(2, 0);
        qc.sx(0).sx(1); // accrue ZZ in 1q layer
        qc.h(0).h(1); // H blocks Z-type propagation
        let (_, report) = ca_ec(&stratify(&qc), &device, CaEcConfig::default());
        assert!(report.inserted >= 1, "{report:?}");
    }

    #[test]
    fn tiny_blocked_pendings_are_dropped_not_gated() {
        let device = dev(2, 30.0); // θ over 40 ns ≈ 0.0075 rad
        let mut qc = Circuit::new(2, 0);
        qc.sx(0).sx(1);
        qc.h(0).h(1);
        let (_, report) = ca_ec(&stratify(&qc), &device, CaEcConfig::default());
        assert_eq!(report.inserted, 0, "{report:?}");
        assert!(report.dropped >= 1, "{report:?}");
    }

    #[test]
    fn logical_unitary_preserved_under_compensation_removal() {
        // With zero ZZ rates the pass must be the identity.
        let device = dev(3, 0.0);
        let mut qc = Circuit::new(3, 0);
        qc.h(0).ecr(0, 1).sx(2).can(0.1, 0.2, 0.3, 1, 2);
        let layered = stratify(&qc);
        let (out, report) = ca_ec(&layered, &device, CaEcConfig::default());
        assert_eq!(report, CaEcReport::default());
        assert_eq!(out.to_circuit(false), layered.to_circuit(false));
    }
}

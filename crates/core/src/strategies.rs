//! Prebuilt compilation strategies — the suppression methods compared
//! throughout the paper's evaluation.

use crate::cadd::{ca_dd, CaDdConfig};
use crate::caec::{ca_ec, CaEcConfig};
use crate::dd::{staggered_dd, uniform_dd, DEFAULT_DMIN_NS};
use crate::error::CompileError;
use crate::pass::{Context, Ir, Pass, PassManager};
use crate::twirl::pauli_twirl;
use ca_circuit::{Circuit, ScheduledCircuit};
use ca_device::Device;

/// The error-suppression strategy to compile with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// No suppression (optionally twirled).
    Bare,
    /// Context-unaware uniform DD: same X2 sequence in every idle
    /// window (the paper's "DD" baseline).
    UniformDd,
    /// Context-unaware staggered DD: static bipartite 2-coloring.
    StaggeredDd,
    /// Context-aware dynamical decoupling (Algorithm 1).
    CaDd,
    /// Context-aware error compensation (Algorithm 2).
    CaEc,
    /// Combined: CA-EC restricted to errors DD cannot suppress, then
    /// CA-DD (Sec. V-E).
    CaEcPlusDd,
}

impl Strategy {
    /// All strategies, in comparison order.
    pub const ALL: [Strategy; 6] = [
        Strategy::Bare,
        Strategy::UniformDd,
        Strategy::StaggeredDd,
        Strategy::CaDd,
        Strategy::CaEc,
        Strategy::CaEcPlusDd,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Bare => "bare",
            Strategy::UniformDd => "DD",
            Strategy::StaggeredDd => "staggered DD",
            Strategy::CaDd => "CA-DD",
            Strategy::CaEc => "CA-EC",
            Strategy::CaEcPlusDd => "CA-EC+DD",
        }
    }
}

/// Compilation options.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// The suppression strategy.
    pub strategy: Strategy,
    /// Whether to Pauli-twirl two-qubit layers.
    pub twirl: bool,
    /// Seed for twirl sampling.
    pub seed: u64,
    /// Minimum idle duration (ns) considered for DD.
    pub d_min: f64,
}

impl CompileOptions {
    /// Options for a strategy with twirling enabled.
    pub fn new(strategy: Strategy, seed: u64) -> Self {
        Self {
            strategy,
            twirl: true,
            seed,
            d_min: DEFAULT_DMIN_NS,
        }
    }

    /// Options without twirling (characterization experiments).
    pub fn untwirled(strategy: Strategy, seed: u64) -> Self {
        Self {
            twirl: false,
            ..Self::new(strategy, seed)
        }
    }
}

/// Pauli-twirl pass (layered form).
pub struct TwirlPass;
impl Pass for TwirlPass {
    fn name(&self) -> &'static str {
        "pauli-twirl"
    }
    fn run(&self, ir: Ir, ctx: &mut Context<'_>) -> Result<Ir, CompileError> {
        let layered = ir.try_layered(self.name())?;
        let (twirled, _) = pauli_twirl(&layered, &mut ctx.rng);
        Ok(Ir::Layered(twirled))
    }
}

/// CA-EC pass (layered form).
pub struct CaEcPass {
    /// Pass configuration.
    pub config: CaEcConfig,
}
impl Pass for CaEcPass {
    fn name(&self) -> &'static str {
        "ca-ec"
    }
    fn run(&self, ir: Ir, ctx: &mut Context<'_>) -> Result<Ir, CompileError> {
        let layered = ir.try_layered(self.name())?;
        let (out, _) = ca_ec(&layered, ctx.device, self.config);
        Ok(Ir::Layered(out))
    }
}

/// Uniform-DD pass (scheduled form).
pub struct UniformDdPass {
    /// Minimum idle duration (ns).
    pub d_min: f64,
}
impl Pass for UniformDdPass {
    fn name(&self) -> &'static str {
        "uniform-dd"
    }
    fn run(&self, ir: Ir, ctx: &mut Context<'_>) -> Result<Ir, CompileError> {
        let sc = ir.into_scheduled(ctx.device);
        Ok(Ir::Scheduled(uniform_dd(&sc, ctx.device, self.d_min)))
    }
}

/// Staggered-DD pass (scheduled form).
pub struct StaggeredDdPass {
    /// Minimum idle duration (ns).
    pub d_min: f64,
}
impl Pass for StaggeredDdPass {
    fn name(&self) -> &'static str {
        "staggered-dd"
    }
    fn run(&self, ir: Ir, ctx: &mut Context<'_>) -> Result<Ir, CompileError> {
        let sc = ir.into_scheduled(ctx.device);
        Ok(Ir::Scheduled(staggered_dd(&sc, ctx.device, self.d_min)))
    }
}

/// CA-DD pass (scheduled form) — Algorithm 1.
pub struct CaDdPass {
    /// Pass configuration.
    pub config: CaDdConfig,
}
impl Pass for CaDdPass {
    fn name(&self) -> &'static str {
        "ca-dd"
    }
    fn run(&self, ir: Ir, ctx: &mut Context<'_>) -> Result<Ir, CompileError> {
        let sc = ir.into_scheduled(ctx.device);
        Ok(Ir::Scheduled(ca_dd(&sc, ctx.device, self.config)))
    }
}

/// Builds the pass pipeline for a strategy.
pub fn pipeline(options: &CompileOptions) -> PassManager {
    let mut pm = PassManager::new();
    if options.twirl {
        pm.push(TwirlPass);
    }
    match options.strategy {
        Strategy::Bare => {}
        Strategy::UniformDd => {
            pm.push(UniformDdPass {
                d_min: options.d_min,
            });
        }
        Strategy::StaggeredDd => {
            pm.push(StaggeredDdPass {
                d_min: options.d_min,
            });
        }
        Strategy::CaDd => {
            pm.push(CaDdPass {
                config: CaDdConfig {
                    d_min: options.d_min,
                },
            });
        }
        Strategy::CaEc => {
            pm.push(CaEcPass {
                config: CaEcConfig::default(),
            });
        }
        Strategy::CaEcPlusDd => {
            pm.push(CaEcPass {
                config: CaEcConfig {
                    only_undecoupled: true,
                    ..CaEcConfig::default()
                },
            });
            pm.push(CaDdPass {
                config: CaDdConfig {
                    d_min: options.d_min,
                },
            });
        }
    }
    pm
}

/// One-call compilation: stratify, twirl, suppress, schedule.
/// Pipeline misuse yields a structured [`CompileError`], never a
/// panic (the prebuilt strategy pipelines are always well-formed, but
/// custom pass stacks built by callers are not).
pub fn compile(
    circuit: &Circuit,
    device: &Device,
    options: &CompileOptions,
) -> Result<ScheduledCircuit, CompileError> {
    let mut ctx = Context::new(device, options.seed);
    pipeline(options).compile(circuit, &mut ctx)
}

/// Compiles one circuit under many option sets (typically twirl
/// seeds) across scoped worker threads, returning results **in job
/// order** regardless of worker count or scheduling. Each job runs
/// the full pass pipeline independently with its own seeded
/// [`Context`], so `compile_batch(qc, dev, opts, w)[i]` equals
/// `compile(qc, dev, &opts[i])` exactly for every `w` — the
/// parallelism is a wall-clock knob only. This is the cold-start
/// lever at Osprey/Condor widths, where one 433- or 1121-qubit
/// pipeline walk (stratify, twirl, DD insertion, ASAP scheduling)
/// takes long enough that compiling twirl instances serially
/// dominates a sweep point's setup time.
///
/// `workers = None` sizes the pool from the host's available
/// parallelism (capped at 16 and at the job count).
pub fn compile_batch(
    circuit: &Circuit,
    device: &Device,
    options: &[CompileOptions],
    workers: Option<usize>,
) -> Vec<Result<ScheduledCircuit, CompileError>> {
    let jobs = options.len();
    let workers = workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .clamp(1, 16)
        .min(jobs.max(1));
    if workers <= 1 {
        return options
            .iter()
            .map(|o| compile(circuit, device, o))
            .collect();
    }
    // Results travel back over a channel tagged with their job index
    // and are sorted into job order afterwards — no shared slots, no
    // lock poisoning to reason about. A worker panic propagates when
    // the scope joins, so a short result vector is unobservable.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                for j in (w..jobs).step_by(workers) {
                    // The receiver outlives the scope; a failed send
                    // is unreachable and safely ignorable.
                    let _ = tx.send((j, compile(circuit, device, &options[j])));
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<(usize, Result<ScheduledCircuit, CompileError>)> = rx.into_iter().collect();
    out.sort_by_key(|&(j, _)| j);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::Gate;
    use ca_device::{uniform_device, Topology};

    fn case_i_circuit() -> Circuit {
        // Two active qubits + two jointly idle neighbours.
        let mut qc = Circuit::new(4, 0);
        qc.h(2).h(3);
        qc.ecr(0, 1);
        qc.ecr(0, 1);
        qc
    }

    #[test]
    fn every_strategy_compiles() {
        let dev = uniform_device(Topology::line(4), 60.0);
        let qc = case_i_circuit();
        for s in Strategy::ALL {
            let sc = compile(&qc, &dev, &CompileOptions::new(s, 3)).unwrap();
            assert!(sc.duration > 0.0, "{}", s.label());
        }
    }

    #[test]
    fn compile_batch_matches_serial_for_every_worker_count() {
        let dev = uniform_device(Topology::line(4), 60.0);
        let qc = case_i_circuit();
        let options: Vec<CompileOptions> = (0..5)
            .map(|i| CompileOptions::new(Strategy::CaDd, 100 + i))
            .collect();
        let serial: Vec<_> = options
            .iter()
            .map(|o| compile(&qc, &dev, o).unwrap())
            .collect();
        for workers in [1, 2, 8] {
            let batch = compile_batch(&qc, &dev, &options, Some(workers));
            let batch: Vec<_> = batch.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(batch, serial, "workers = {workers}");
        }
    }

    #[test]
    fn cadd_adds_pulses_bare_does_not() {
        let dev = uniform_device(Topology::line(4), 60.0);
        let qc = case_i_circuit();
        let count_x = |sc: &ScheduledCircuit| {
            sc.items
                .iter()
                .filter(|si| si.instruction.gate == Gate::X)
                .count()
        };
        let bare = compile(&qc, &dev, &CompileOptions::untwirled(Strategy::Bare, 3)).unwrap();
        let cadd = compile(&qc, &dev, &CompileOptions::untwirled(Strategy::CaDd, 3)).unwrap();
        assert_eq!(count_x(&bare), 0);
        assert!(count_x(&cadd) > 0);
    }

    #[test]
    fn caec_adds_compensation_gates() {
        let dev = uniform_device(Topology::line(4), 60.0);
        let qc = case_i_circuit();
        let caec = compile(&qc, &dev, &CompileOptions::untwirled(Strategy::CaEc, 3)).unwrap();
        let has_comp = caec
            .items
            .iter()
            .any(|si| matches!(si.instruction.gate, Gate::Rz(_) | Gate::Rzz(_)));
        assert!(has_comp);
    }

    #[test]
    fn twirl_changes_with_seed_strategy_pipeline() {
        let dev = uniform_device(Topology::line(4), 60.0);
        let qc = case_i_circuit();
        let a = compile(&qc, &dev, &CompileOptions::new(Strategy::Bare, 1)).unwrap();
        let b = compile(&qc, &dev, &CompileOptions::new(Strategy::Bare, 2)).unwrap();
        assert_ne!(
            a.items
                .iter()
                .map(|si| si.instruction.gate.name())
                .collect::<Vec<_>>(),
            b.items
                .iter()
                .map(|si| si.instruction.gate.name())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn pipeline_names_match_strategy() {
        let opts = CompileOptions::new(Strategy::CaEcPlusDd, 0);
        let names = pipeline(&opts).pass_names();
        assert_eq!(names, vec!["pauli-twirl", "ca-ec", "ca-dd"]);
    }
}

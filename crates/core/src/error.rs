//! Structured compilation errors.
//!
//! The pass framework used to `panic!` on misuse (a layered-form pass
//! scheduled after a scheduling pass); every such condition is now a
//! [`CompileError`] surfaced through [`crate::pass::PassManager::compile`]
//! and [`crate::strategies::compile`], mirroring the simulator's
//! `SimError` design: library callers can report pipeline misuse
//! without crashing a server.

use std::fmt;

/// Why a compilation pipeline could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A pass that consumes the layered IR ran after the circuit was
    /// already lowered to the scheduled form (DD and other
    /// schedule-form passes must come last in a pipeline).
    PassRequiresLayeredForm {
        /// Name of the offending pass.
        pass: &'static str,
    },
    /// A twirl-ensemble fast path could not align an instance's twirl
    /// draws with the base schedule's merged twirl slots, so the
    /// shared-schedule representation would be unsound. Callers fall
    /// back to compiling the instance independently.
    EnsembleShapeMismatch {
        /// Qubit whose twirl-slot count disagreed.
        qubit: usize,
        /// Merged slots found on the base schedule for that qubit.
        slots: usize,
        /// Twirl draws recorded for that qubit.
        draws: usize,
    },
    /// The strategy's pipeline is not twirl-ensemble shareable (its
    /// post-twirl passes read the twirl Paulis, e.g. CA-EC), or
    /// twirling is disabled.
    EnsembleUnsupported {
        /// The strategy/pipeline label.
        label: &'static str,
    },
    /// The ensemble self-check failed: re-deriving the base seed's
    /// twirl draws did not reproduce the base schedule's own merged
    /// Paulis, so the slot↔draw correspondence cannot be trusted.
    EnsembleSelfCheckFailed {
        /// Item index of the first disagreeing slot.
        item: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::PassRequiresLayeredForm { pass } => write!(
                f,
                "pass '{pass}' requires the layered form, but the circuit was already \
                 scheduled; move layered-form passes before any scheduling pass"
            ),
            CompileError::EnsembleShapeMismatch {
                qubit,
                slots,
                draws,
            } => write!(
                f,
                "twirl ensemble shape mismatch on qubit {qubit}: base schedule has {slots} \
                 merged twirl slots but the instance drew {draws} Paulis"
            ),
            CompileError::EnsembleUnsupported { label } => write!(
                f,
                "pipeline '{label}' does not support the shared-schedule twirl ensemble"
            ),
            CompileError::EnsembleSelfCheckFailed { item } => write!(
                f,
                "twirl ensemble self-check failed at scheduled item {item}: base twirl draws \
                 do not reproduce the base schedule's merged Paulis"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

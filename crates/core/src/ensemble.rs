//! Twirl-ensemble compilation: one schedule, many twirl instances.
//!
//! Twirled instances of a circuit differ only in which Pauli sits in
//! each merged twirl slot (see [`crate::twirl`]): merged Paulis take
//! no schedule time, draw no gate error, and cast no Stark shadow, so
//! every instance of a `(circuit, strategy)` point has *bit-identical
//! timing* — the same scheduled items, idle windows, DD pulse
//! placements, and noise-timeline segments. Compiling a sweep point
//! therefore does not need to run the pass pipeline once per
//! instance: this module compiles the **base instance** once, records
//! where its merged twirl slots sit, and derives every other instance
//! as a *dressing* — a `(item, Pauli)` substitution list the
//! simulator's compiled-artifact layer applies without replanning
//! (`ca-sim`'s `CompiledCircuit::redress`).
//!
//! Soundness is checked, not assumed: the base seed's twirl draws are
//! re-derived through the same slot-matching used for every other
//! instance and must reproduce the base schedule's own merged Paulis
//! exactly; any disagreement is a structured [`CompileError`] and the
//! caller falls back to independent compilation. Strategies whose
//! post-twirl passes *read* the twirl Paulis (CA-EC commutes
//! compensations through them) are not shareable and are rejected up
//! front.

use crate::error::CompileError;
use crate::pass::Context;
use crate::strategies::{pipeline, CompileOptions, Strategy};
use crate::twirl::pauli_twirl;
use ca_circuit::{stratify, Circuit, Pauli, ScheduledCircuit};
use ca_device::Device;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One compiled twirl ensemble: the base schedule plus per-instance
/// Pauli dressings over its merged twirl slots.
#[derive(Clone, Debug)]
pub struct TwirlEnsemble {
    /// The base instance, compiled through the full pass pipeline
    /// with `seeds[0]`.
    pub base: ScheduledCircuit,
    /// Item indices of the merged twirl slots, in schedule order.
    pub slots: Vec<usize>,
    /// Per seed (parallel to the input seed list): the full dressing
    /// `(item, Pauli)` across every slot. `dressings[0]` reproduces
    /// the base schedule's own Paulis.
    pub dressings: Vec<Vec<(usize, Pauli)>>,
}

/// True when `options` compiles through a pipeline whose post-twirl
/// passes are functions of *timing and non-Pauli gates only*, so all
/// twirl instances share one schedule. CA-EC reads the twirl Paulis
/// (its compensations commute through them), and untwirled options
/// have no ensemble to share.
pub fn ensemble_shareable(options: &CompileOptions) -> bool {
    options.twirl
        && matches!(
            options.strategy,
            Strategy::Bare | Strategy::UniformDd | Strategy::StaggeredDd | Strategy::CaDd
        )
}

/// The Pauli a merged twirl slot carries, if the item is one.
fn slot_pauli(sc: &ScheduledCircuit, item: usize) -> Option<Pauli> {
    let instr = &sc.items[item].instruction;
    if !instr.merged || instr.qubits.len() != 1 || instr.condition.is_some() {
        return None;
    }
    match instr.gate {
        ca_circuit::Gate::I => Some(Pauli::I),
        ca_circuit::Gate::X => Some(Pauli::X),
        ca_circuit::Gate::Y => Some(Pauli::Y),
        ca_circuit::Gate::Z => Some(Pauli::Z),
        _ => None,
    }
}

/// Re-derives the twirl draws of `seed` on the stratified circuit and
/// maps them onto the base schedule's per-qubit slot lists.
fn dressing_for_seed(
    stratified: &ca_circuit::LayeredCircuit,
    slots_by_qubit: &[Vec<usize>],
    seed: u64,
) -> Result<Vec<(usize, Pauli)>, CompileError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (_, record) = pauli_twirl(stratified, &mut rng);
    // Per qubit, twirl draws in emission order sorted (stably) by
    // output-layer index = time order, matching the schedule's
    // per-qubit slot order.
    let nq = slots_by_qubit.len();
    let mut draws: Vec<Vec<(usize, Pauli)>> = vec![Vec::new(); nq];
    for &(layer, qubit, pauli) in &record.inserted {
        draws[qubit].push((layer, pauli));
    }
    let mut dressing = Vec::new();
    for (q, (slots, qdraws)) in slots_by_qubit.iter().zip(draws.iter_mut()).enumerate() {
        qdraws.sort_by_key(|&(layer, _)| layer);
        if slots.len() != qdraws.len() {
            return Err(CompileError::EnsembleShapeMismatch {
                qubit: q,
                slots: slots.len(),
                draws: qdraws.len(),
            });
        }
        for (&item, &(_, pauli)) in slots.iter().zip(qdraws.iter()) {
            dressing.push((item, pauli));
        }
    }
    dressing.sort_by_key(|&(item, _)| item);
    Ok(dressing)
}

/// Compiles a twirl ensemble: the full pipeline once (for `seeds[0]`),
/// then one dressing per seed. Instances with the same seed get the
/// same dressing as an independent `compile` call with that seed
/// would produce — validated by the built-in self-check on the base
/// seed.
pub fn compile_twirl_ensemble(
    circuit: &Circuit,
    device: &Device,
    options: &CompileOptions,
    seeds: &[u64],
) -> Result<TwirlEnsemble, CompileError> {
    if !ensemble_shareable(options) {
        return Err(CompileError::EnsembleUnsupported {
            label: options.strategy.label(),
        });
    }
    let base_seed = seeds.first().copied().unwrap_or(options.seed);
    let base_options = CompileOptions {
        seed: base_seed,
        ..*options
    };
    let mut ctx = Context::new(device, base_seed);
    let base = pipeline(&base_options).compile(circuit, &mut ctx)?;

    let mut slots = Vec::new();
    let mut slots_by_qubit: Vec<Vec<usize>> = vec![Vec::new(); base.num_qubits];
    for item in 0..base.items.len() {
        if slot_pauli(&base, item).is_some() {
            slots.push(item);
            slots_by_qubit[base.items[item].instruction.qubits[0]].push(item);
        }
    }

    let stratified = stratify(circuit);
    let mut dressings = Vec::with_capacity(seeds.len());
    for (i, &seed) in seeds.iter().enumerate() {
        let dressing = dressing_for_seed(&stratified, &slots_by_qubit, seed)?;
        if i == 0 {
            // Self-check: the base seed's re-derived dressing must
            // reproduce the base schedule's own merged Paulis, or the
            // slot↔draw correspondence is unsound for every seed.
            for &(item, pauli) in &dressing {
                if slot_pauli(&base, item) != Some(pauli) {
                    return Err(CompileError::EnsembleSelfCheckFailed { item });
                }
            }
        }
        dressings.push(dressing);
    }
    Ok(TwirlEnsemble {
        base,
        slots,
        dressings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::compile;
    use ca_device::{uniform_device, Topology};

    fn workload(n: usize) -> Circuit {
        let mut qc = Circuit::new(n, 0);
        for q in 0..n {
            qc.h(q);
        }
        qc.barrier(Vec::<usize>::new());
        for layer in 0..3 {
            let mut q = layer % 2;
            while q + 1 < n {
                qc.ecr(q, q + 1);
                q += 2;
            }
            qc.barrier(Vec::<usize>::new());
        }
        qc
    }

    #[test]
    fn shareability_matches_strategy() {
        for s in Strategy::ALL {
            let opts = CompileOptions::new(s, 1);
            let expect = !matches!(s, Strategy::CaEc | Strategy::CaEcPlusDd);
            assert_eq!(ensemble_shareable(&opts), expect, "{}", s.label());
        }
        assert!(!ensemble_shareable(&CompileOptions::untwirled(
            Strategy::CaDd,
            1
        )));
    }

    #[test]
    fn dressed_base_matches_independent_compiles() {
        // The ensemble's dressings, substituted into the base
        // schedule, must reproduce each seed's independent pipeline
        // compile exactly — items, gates, timing, everything.
        let dev = uniform_device(Topology::line(6), 60.0);
        let qc = workload(6);
        for strategy in [Strategy::Bare, Strategy::UniformDd, Strategy::CaDd] {
            let opts = CompileOptions::new(strategy, 0);
            let seeds = [11u64, 12, 13, 14];
            let ens = compile_twirl_ensemble(&qc, &dev, &opts, &seeds).unwrap();
            assert!(!ens.slots.is_empty(), "twirl slots exist");
            for (i, &seed) in seeds.iter().enumerate() {
                let mut dressed = ens.base.clone();
                for &(item, pauli) in &ens.dressings[i] {
                    dressed.items[item].instruction.gate = pauli.gate();
                }
                let independent = compile(&qc, &dev, &CompileOptions { seed, ..opts }).unwrap();
                assert_eq!(
                    dressed,
                    independent,
                    "{} seed {seed}: dressed base must equal the independent compile",
                    strategy.label()
                );
            }
        }
    }

    #[test]
    fn caec_and_untwirled_are_rejected() {
        let dev = uniform_device(Topology::line(4), 60.0);
        let qc = workload(4);
        let err = compile_twirl_ensemble(&qc, &dev, &CompileOptions::new(Strategy::CaEc, 1), &[1])
            .unwrap_err();
        assert_eq!(err, CompileError::EnsembleUnsupported { label: "CA-EC" });
        let err = compile_twirl_ensemble(
            &qc,
            &dev,
            &CompileOptions::untwirled(Strategy::Bare, 1),
            &[1],
        )
        .unwrap_err();
        assert_eq!(err, CompileError::EnsembleUnsupported { label: "bare" });
    }
}

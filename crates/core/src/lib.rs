#![forbid(unsafe_code)]
//! # ca-core
//!
//! The paper's contribution: a context-aware compiler that suppresses
//! correlated coherent errors on fixed-frequency superconducting
//! devices.
//!
//! * [`twirl`] — Pauli twirling of two-qubit layers (Fig. 2);
//! * [`walsh`] — the Walsh–Hadamard DD sequence dictionary (Fig. 5b);
//! * [`dd`] — pulse-insertion machinery and the context-unaware
//!   baselines (uniform "DD" and static staggered DD);
//! * [`cadd`] — Context-Aware Dynamical Decoupling, Algorithm 1;
//! * [`caec`] — Context-Aware Error Compensation, Algorithm 2;
//! * [`dynamic`] — CA-EC for mid-circuit measurement + feed-forward
//!   (Fig. 9);
//! * [`pass`] / [`strategies`] — the pass framework and the prebuilt
//!   strategy pipelines compared in the paper's evaluation.

#![warn(missing_docs)]

pub mod avoid;
pub mod cadd;
pub mod caec;
pub mod dd;
pub mod decompose;
pub mod dynamic;
pub mod ensemble;
pub mod error;
pub mod pass;
pub mod strategies;
pub mod twirl;
pub mod walsh;

pub use avoid::{avoid_contexts, AvoidContextsPass, AvoidReport};
pub use cadd::{ca_dd, CaDdConfig, Coloring, JointWindow, CONTROL_COLOR, TARGET_COLOR};
pub use caec::{ca_ec, CaEcConfig, CaEcReport};
pub use dd::{staggered_dd, uniform_dd, DEFAULT_DMIN_NS};
pub use decompose::{decompose_can, DecomposeCanPass};
pub use dynamic::append_measure_compensation;
pub use ensemble::{compile_twirl_ensemble, ensemble_shareable, TwirlEnsemble};
pub use error::CompileError;
pub use pass::{Context, Ir, Pass, PassManager};
pub use strategies::{compile, compile_batch, pipeline, CompileOptions, Strategy};
pub use twirl::{pauli_twirl, readout_twirl, TwirlRecord};

//! CA-EC for dynamic circuits (Sec. V-D, Fig. 9).
//!
//! During a mid-circuit measurement plus feed-forward window of total
//! length τ, idle qubits accrue:
//!
//! * full `U11` (Eq. 2) with *idle* neighbours → compensate with
//!   `Rz(+θ)⊗Rz(+θ)` and a pulse-stretched `Rzz(−θ)`;
//! * a phase with the *measured* neighbour that depends on its
//!   collapsed state: `Rz(−θ + (−1)^m θ)` — zero for outcome 0,
//!   `Rz(−2θ)` for outcome 1 → compensate with a **conditional**
//!   virtual `Rz(+2θ)` appended to the feed-forward block (the extra
//!   Z rotation of Fig. 9b, case 1).

use ca_circuit::{Circuit, Gate};
use ca_device::{phase_rad, Device};

/// Appends the Fig. 9b compensation block to a dynamic circuit.
///
/// * `aux` — the measured qubit, whose outcome lives in `clbit`;
/// * `idle_qubits` — qubits idle during measurement + feed-forward;
/// * `tau_estimate_ns` — the estimated total idle time τ (measurement
///   plus feed-forward latency). The paper calibrates this by sweeping
///   τ and maximising fidelity (Fig. 9c).
pub fn append_measure_compensation(
    qc: &mut Circuit,
    device: &Device,
    aux: usize,
    clbit: usize,
    idle_qubits: &[usize],
    tau_estimate_ns: f64,
) {
    // Idle–idle pairs: invert U11 = Rzz(θ)·[Rz(−θ)⊗Rz(−θ)].
    for (x, &i) in idle_qubits.iter().enumerate() {
        for &j in idle_qubits.iter().skip(x + 1) {
            let nu = device.crosstalk.edge(i, j).map_or(0.0, |e| e.zz_khz);
            if nu == 0.0 {
                continue;
            }
            let theta = phase_rad(nu, tau_estimate_ns);
            qc.rz(theta, i);
            qc.rz(theta, j);
            qc.rzz(-theta, i, j);
        }
    }
    // Aux–spectator edges: conditional Rz(+2θ) when the outcome is 1,
    // plus the unconditional local Rz(+θ) from the aux qubit's −Z term
    // acting on the spectator (included in U11's local part).
    for &s in idle_qubits {
        let nu = device.crosstalk.edge(aux, s).map_or(0.0, |e| e.zz_khz);
        if nu == 0.0 {
            continue;
        }
        let theta = phase_rad(nu, tau_estimate_ns);
        qc.gate_if(Gate::Rz(2.0 * theta), [s], clbit, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_device::{uniform_device, Topology};

    #[test]
    fn compensation_block_contents() {
        // Line 0(aux)—1—2: data pair (1,2) idle.
        let dev = uniform_device(Topology::line(3), 80.0);
        let mut qc = Circuit::new(3, 1);
        qc.measure(0, 0);
        let before = qc.len();
        append_measure_compensation(&mut qc, &dev, 0, 0, &[1, 2], 5000.0);
        let added = &qc.instructions[before..];
        // rz, rz, rzz for the idle pair + 1 conditional rz (aux—1 edge;
        // aux—2 not coupled on a line).
        assert_eq!(added.len(), 4);
        let theta = phase_rad(80.0, 5000.0);
        assert!(added.iter().any(|i| i.gate == Gate::Rzz(-theta)));
        let cond: Vec<_> = added.iter().filter(|i| i.condition.is_some()).collect();
        assert_eq!(cond.len(), 1);
        assert_eq!(cond[0].gate, Gate::Rz(2.0 * theta));
        assert!(cond[0].acts_on(1));
    }

    #[test]
    fn no_compensation_for_uncoupled_qubits() {
        let dev = uniform_device(Topology::line(3), 0.0);
        let mut qc = Circuit::new(3, 1);
        qc.measure(0, 0);
        let before = qc.len();
        append_measure_compensation(&mut qc, &dev, 0, 0, &[1, 2], 5000.0);
        assert_eq!(qc.len(), before);
    }
}

//! Pauli twirling of two-qubit Clifford layers (Sec. III-A, Fig. 2).
//!
//! Random Pauli pairs are inserted before each two-qubit Clifford gate
//! and their conjugated partners after it, leaving the logical circuit
//! unchanged while tailoring the gate's error channel into a Pauli
//! channel. Twirl Paulis are kept as explicit `OneQubit` layers so the
//! CA-EC pass can commute compensations through them with the correct
//! signs (Algorithm 2's commute/anti-commute bookkeeping), and are
//! emitted *merged* (`Instruction::merged`): hardware absorbs them
//! into the neighbouring 1q pulses at zero cost, so they take no
//! schedule time, draw no gate error, and cast no Stark shadow. The
//! merged form is also what makes every twirl instance of a circuit
//! share one schedule — the basis of the twirl-ensemble fast path in
//! [`crate::ensemble`].

use ca_circuit::clifford::twirl_partner;
use ca_circuit::pauli::Pauli;
use ca_circuit::{Instruction, Layer, LayerKind, LayeredCircuit};
use rand::rngs::StdRng;
use rand::RngExt;

/// Which layers a twirl was applied to, with the sampled Paulis —
/// returned for reproducibility and analysis.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TwirlRecord {
    /// `(layer_index_in_output, qubit, pauli)` for every inserted gate.
    pub inserted: Vec<(usize, usize, Pauli)>,
}

/// Twirls every `TwoQubit` layer of a stratified circuit: inserts a
/// fresh random Pauli layer before and its conjugated partner after.
/// Identity Paulis are kept as explicit `I` gates so twirl layers have
/// uniform duration (as on hardware, where they merge into the 1q
/// layers).
pub fn pauli_twirl(layered: &LayeredCircuit, rng: &mut StdRng) -> (LayeredCircuit, TwirlRecord) {
    let mut out = LayeredCircuit {
        num_qubits: layered.num_qubits,
        num_clbits: layered.num_clbits,
        layers: Vec::new(),
    };
    let mut record = TwirlRecord::default();
    for layer in &layered.layers {
        if layer.kind != LayerKind::TwoQubit {
            out.layers.push(layer.clone());
            continue;
        }
        let mut before = Vec::new();
        let mut after = Vec::new();
        for instr in &layer.instructions {
            // Clifford gates admit the full 16-element Pauli twirl.
            // Canonical/Rzz interaction gates commute with P⊗P, so they
            // admit the 4-element diagonal twirl {II, XX, YY, ZZ}.
            let (pb, pa) = if instr.gate.is_clifford() {
                let pb = (
                    Pauli::from_index(rng.random_range(0..4usize)),
                    Pauli::from_index(rng.random_range(0..4usize)),
                );
                (pb, twirl_partner(instr.gate, pb))
            } else if matches!(
                instr.gate,
                ca_circuit::Gate::Can { .. } | ca_circuit::Gate::Rzz(_)
            ) {
                let p = Pauli::from_index(rng.random_range(0..4usize));
                ((p, p), (p, p))
            } else {
                panic!("cannot twirl {}", instr.gate.name()); // ca-lint: allow(panic) -- twirl set covers every 2q gate the compiler emits; fail loudly on a new one
            };
            let (a, b) = (instr.qubits[0], instr.qubits[1]);
            before.push(Instruction::new(pb.0.gate(), [a]).as_merged());
            before.push(Instruction::new(pb.1.gate(), [b]).as_merged());
            after.push(Instruction::new(pa.0.gate(), [a]).as_merged());
            after.push(Instruction::new(pa.1.gate(), [b]).as_merged());
            let li = out.layers.len();
            record.inserted.push((li, a, pb.0));
            record.inserted.push((li, b, pb.1));
            record.inserted.push((li + 2, a, pa.0));
            record.inserted.push((li + 2, b, pa.1));
        }
        out.layers.push(Layer {
            kind: LayerKind::OneQubit,
            instructions: before,
        });
        out.layers.push(layer.clone());
        out.layers.push(Layer {
            kind: LayerKind::OneQubit,
            instructions: after,
        });
    }
    (out, record)
}

/// Readout twirling (Sec. V-C): flips each measured qubit with a
/// random X right before measurement and records which classical bits
/// must be flipped back in post-processing. Returns the mask of bits
/// to XOR into every outcome.
pub fn readout_twirl(layered: &mut LayeredCircuit, rng: &mut StdRng) -> u64 {
    let mut mask = 0u64;
    let mut flips = Vec::new();
    for layer in &layered.layers {
        if layer.kind != LayerKind::Measurement {
            continue;
        }
        for instr in &layer.instructions {
            if instr.gate == ca_circuit::Gate::Measure && rng.random::<bool>() {
                flips.push(instr.qubits[0]);
                if let Some(c) = instr.clbit {
                    mask |= 1 << c;
                }
            }
        }
    }
    if flips.is_empty() {
        return 0;
    }
    // Insert the X layer right before the first measurement layer.
    let pos = layered
        .layers
        .iter()
        .position(|l| l.kind == LayerKind::Measurement)
        .expect("measurement layer exists"); // ca-lint: allow(panic) -- twirled circuits end in a measurement layer by construction
    let xs = flips
        .into_iter()
        .map(|q| Instruction::new(ca_circuit::Gate::X, [q]))
        .collect();
    layered.layers.insert(
        pos,
        Layer {
            kind: LayerKind::OneQubit,
            instructions: xs,
        },
    );
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::canonical::fragment_unitary;
    use ca_circuit::{stratify, Circuit};
    use rand::SeedableRng;

    #[test]
    fn twirl_preserves_logical_unitary() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).ecr(0, 1).sx(1);
        let layered = stratify(&qc);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (twirled, _) = pauli_twirl(&layered, &mut rng);
            let base = fragment_unitary(&layered.to_circuit(false).instructions, 0, 1);
            let tw = fragment_unitary(&twirled.to_circuit(false).instructions, 0, 1);
            assert!(
                tw.approx_eq_up_to_phase(&base, 1e-9),
                "twirl changed the logical unitary (seed {seed})"
            );
        }
    }

    #[test]
    fn twirl_adds_layers_around_two_qubit() {
        let mut qc = Circuit::new(2, 0);
        qc.ecr(0, 1);
        let layered = stratify(&qc);
        let mut rng = StdRng::seed_from_u64(1);
        let (twirled, record) = pauli_twirl(&layered, &mut rng);
        assert_eq!(twirled.layers.len(), 3);
        assert_eq!(twirled.layers[0].kind, LayerKind::OneQubit);
        assert_eq!(twirled.layers[1].kind, LayerKind::TwoQubit);
        assert_eq!(twirled.layers[2].kind, LayerKind::OneQubit);
        assert_eq!(record.inserted.len(), 4);
    }

    #[test]
    fn twirl_is_random_across_seeds() {
        let mut qc = Circuit::new(2, 0);
        qc.ecr(0, 1);
        let layered = stratify(&qc);
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (t, _) = pauli_twirl(&layered, &mut rng);
            let names: Vec<String> = t.layers[0]
                .instructions
                .iter()
                .map(|i| i.gate.name().to_string())
                .collect();
            distinct.insert(names.join(","));
        }
        assert!(
            distinct.len() > 3,
            "16 seeds should produce several distinct twirls"
        );
    }

    #[test]
    fn readout_twirl_mask_matches_flips() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).measure(0, 0).measure(1, 1);
        let mut found_nonzero = false;
        for seed in 0..10 {
            let mut layered = stratify(&qc);
            let mut rng = StdRng::seed_from_u64(seed);
            let mask = readout_twirl(&mut layered, &mut rng);
            if mask != 0 {
                found_nonzero = true;
                // An X layer must have been inserted before measurement.
                let meas_pos = layered
                    .layers
                    .iter()
                    .position(|l| l.kind == LayerKind::Measurement)
                    .unwrap();
                assert!(meas_pos > 0);
                let prev = &layered.layers[meas_pos - 1];
                assert!(prev
                    .instructions
                    .iter()
                    .all(|i| i.gate == ca_circuit::Gate::X));
            }
        }
        assert!(found_nonzero);
    }
}

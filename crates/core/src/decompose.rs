//! Lowering pass: expand canonical gates into their hardware-native
//! 3-ECR form.
//!
//! Running CA-EC *before* this pass is the paper's workflow for the
//! Heisenberg application (Sec. V-B): compensations absorb for free
//! into the canonical γ angles at the logical level, and only then is
//! the circuit lowered to ECR pulses — where those absorptions would
//! otherwise have been blocked by the decomposition's `Ry` fixups.

use ca_circuit::canonical::can_to_ecr;
use ca_circuit::{stratify, Circuit, Gate, LayeredCircuit};

/// Expands every `Can` gate into 3 ECR + 1q gates and re-stratifies.
/// Layer boundaries of the input are preserved with barriers so
/// concurrent canonical gates stay aligned after lowering.
pub fn decompose_can(layered: &LayeredCircuit) -> LayeredCircuit {
    let flat = layered.to_circuit(true);
    let mut out = Circuit::new(flat.num_qubits, flat.num_clbits);
    for instr in &flat.instructions {
        match instr.gate {
            Gate::Can { alpha, beta, gamma } => {
                for sub in can_to_ecr(alpha, beta, gamma, instr.qubits[0], instr.qubits[1]) {
                    out.push(sub);
                }
            }
            _ => {
                out.push(instr.clone());
            }
        }
    }
    stratify(&out)
}

/// Pass wrapper.
pub struct DecomposeCanPass;

impl crate::pass::Pass for DecomposeCanPass {
    fn name(&self) -> &'static str {
        "decompose-can"
    }
    fn run(
        &self,
        ir: crate::pass::Ir,
        _ctx: &mut crate::pass::Context<'_>,
    ) -> Result<crate::pass::Ir, crate::error::CompileError> {
        Ok(crate::pass::Ir::Layered(decompose_can(
            &ir.try_layered(self.name())?,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::canonical::fragment_unitary;
    use ca_circuit::gate::canonical_matrix;

    #[test]
    fn expansion_preserves_unitary() {
        let mut qc = Circuit::new(2, 0);
        qc.can(0.2, -0.3, 0.4, 0, 1);
        let out = decompose_can(&stratify(&qc)).to_circuit(false);
        let built = fragment_unitary(&out.instructions, 0, 1);
        assert!(built.approx_eq_up_to_phase(&canonical_matrix(0.2, -0.3, 0.4), 1e-9));
        assert_eq!(out.count_gate("ecr"), 3);
        assert_eq!(out.count_gate("can"), 0);
    }

    #[test]
    fn non_canonical_gates_untouched() {
        let mut qc = Circuit::new(3, 1);
        qc.h(0).ecr(0, 1).rzz(0.3, 1, 2).measure(2, 0);
        let before = stratify(&qc);
        let after = decompose_can(&before);
        let gates = |l: &LayeredCircuit| {
            l.to_circuit(false)
                .instructions
                .iter()
                .filter(|i| i.gate != Gate::Barrier)
                .count()
        };
        assert_eq!(gates(&before), gates(&after));
    }

    #[test]
    fn parallel_cans_stay_in_aligned_layers() {
        let mut qc = Circuit::new(4, 0);
        qc.can(0.1, 0.1, 0.1, 0, 1).can(0.1, 0.1, 0.1, 2, 3);
        let out = decompose_can(&stratify(&qc));
        // The first two-qubit layer after lowering must hold ECRs from
        // *both* gates (they remain concurrent).
        let first_2q = out
            .layers
            .iter()
            .find(|l| l.kind == ca_circuit::LayerKind::TwoQubit)
            .unwrap();
        assert_eq!(first_2q.instructions.len(), 2);
    }
}

//! The compiler pass framework.
//!
//! Passes transform a circuit through two intermediate
//! representations: the *layered* form (stratified alternating 1q/2q
//! layers, Fig. 2) used by twirling and CA-EC, and the *scheduled*
//! form (timeline with explicit timing) used by the DD passes. The
//! [`PassManager`] runs a pipeline, converting between forms on
//! demand via ASAP scheduling with the device's durations.

use crate::error::CompileError;
use ca_circuit::{schedule_asap, stratify, Circuit, LayeredCircuit, ScheduledCircuit};
use ca_device::Device;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Compilation state threaded through passes.
pub struct Context<'d> {
    /// The target device.
    pub device: &'d Device,
    /// Seeded randomness (twirl sampling).
    pub rng: StdRng,
    /// Post-processing mask for readout twirling (XOR into outcomes).
    pub readout_mask: u64,
}

impl<'d> Context<'d> {
    /// Creates a context with a seeded RNG.
    pub fn new(device: &'d Device, seed: u64) -> Self {
        Self {
            device,
            rng: StdRng::seed_from_u64(seed),
            readout_mask: 0,
        }
    }
}

/// The intermediate representation a pass consumes/produces.
#[derive(Clone, Debug)]
pub enum Ir {
    /// Stratified layers (pre-scheduling).
    Layered(LayeredCircuit),
    /// Timed instructions (post-scheduling).
    Scheduled(ScheduledCircuit),
}

impl Ir {
    /// Coerces to the layered form. A pipeline that schedules first
    /// and then runs a layered-form pass is misconfigured: the result
    /// is a structured [`CompileError`] naming the pass, never a
    /// panic.
    pub fn try_layered(self, pass: &'static str) -> Result<LayeredCircuit, CompileError> {
        match self {
            Ir::Layered(l) => Ok(l),
            Ir::Scheduled(_) => Err(CompileError::PassRequiresLayeredForm { pass }),
        }
    }

    /// Coerces to the scheduled form, scheduling on demand with
    /// barriers between layers so layer alignment is preserved.
    pub fn into_scheduled(self, device: &Device) -> ScheduledCircuit {
        match self {
            Ir::Scheduled(s) => s,
            Ir::Layered(l) => {
                let flat = l.to_circuit(true);
                schedule_asap(&flat, device.durations())
            }
        }
    }
}

/// A compiler pass.
pub trait Pass {
    /// Short name for logs and reports.
    fn name(&self) -> &'static str;
    /// Transforms the IR. Pipeline misuse (e.g. requesting the
    /// layered form after scheduling) is a [`CompileError`].
    fn run(&self, ir: Ir, ctx: &mut Context<'_>) -> Result<Ir, CompileError>;
}

/// Runs passes in order, starting from the stratified form of the
/// input circuit and ending in the scheduled form.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self { passes: Vec::new() }
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Names of the registered passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Compiles a circuit: stratify → passes → schedule. Pipeline
    /// misuse surfaces as a [`CompileError`] instead of a panic.
    ///
    /// Each stage is timed under the `compile.pass` observability
    /// category (one span per pass, named by [`Pass::name`]); the
    /// spans read only the clock, so compilation output is identical
    /// at every `CA_OBS` level.
    pub fn compile(
        &self,
        circuit: &Circuit,
        ctx: &mut Context<'_>,
    ) -> Result<ScheduledCircuit, CompileError> {
        let _pipeline =
            ca_obs::span("compile", "pipeline").with_arg("passes", self.passes.len() as f64);
        ca_obs::counter_add("compile.circuits", 1);
        let mut ir = {
            let _s = ca_obs::span("compile.pass", "stratify");
            Ir::Layered(stratify(circuit))
        };
        for pass in &self.passes {
            let _s = ca_obs::span("compile.pass", pass.name());
            ir = pass.run(ir, ctx)?;
        }
        let _s = ca_obs::span("compile.pass", "schedule");
        Ok(ir.into_scheduled(ctx.device))
    }
}

impl Default for PassManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_device::{uniform_device, Topology};

    struct NoopPass;
    impl Pass for NoopPass {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn run(&self, ir: Ir, _ctx: &mut Context<'_>) -> Result<Ir, CompileError> {
            Ok(ir)
        }
    }

    #[test]
    fn empty_pipeline_schedules() {
        let dev = uniform_device(Topology::line(2), 50.0);
        let mut qc = Circuit::new(2, 0);
        qc.h(0).ecr(0, 1);
        let mut ctx = Context::new(&dev, 1);
        let pm = PassManager::new();
        let sc = pm.compile(&qc, &mut ctx).unwrap();
        assert!(sc.duration > 0.0);
        assert_eq!(sc.num_qubits, 2);
    }

    #[test]
    fn pass_names_in_order() {
        let mut pm = PassManager::new();
        pm.push(NoopPass).push(NoopPass);
        assert_eq!(pm.pass_names(), vec!["noop", "noop"]);
    }

    #[test]
    fn layered_after_scheduled_is_a_structured_error() {
        let dev = uniform_device(Topology::line(1), 0.0);
        let qc = Circuit::new(1, 0);
        let sc = schedule_asap(&qc, dev.durations());
        let err = Ir::Scheduled(sc).try_layered("pauli-twirl").unwrap_err();
        assert_eq!(
            err,
            CompileError::PassRequiresLayeredForm {
                pass: "pauli-twirl"
            }
        );
    }
}

//! Context avoidance — the compiler direction the paper's conclusion
//! sketches: *"One could therefore ask a compiler to not schedule
//! circuits with these undesirable contexts."*
//!
//! Some correlated errors (case IV: crosstalk-adjacent qubits driven
//! with *aligned* echo patterns, e.g. two ECR controls) can be
//! neither decoupled (the qubits are busy) nor always absorbed. This
//! pass removes the context instead: two-qubit layers are split so no
//! pair of concurrent gates puts aligned-pattern qubits on a crosstalk
//! edge. The price is circuit depth; the ablation bench quantifies the
//! trade against CA-EC's compensation.

use ca_circuit::{Gate, Instruction, Layer, LayerKind, LayeredCircuit};
use ca_device::Device;

/// Statistics from the avoidance pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AvoidReport {
    /// Two-qubit layers examined.
    pub layers_in: usize,
    /// Two-qubit layers emitted (≥ `layers_in`).
    pub layers_out: usize,
    /// Gate pairs that conflicted and were separated.
    pub conflicts: usize,
}

/// The echo-pattern role a qubit takes in a gate, for conflict checks.
fn roles(instr: &Instruction) -> Vec<(usize, u8)> {
    match instr.gate {
        Gate::Ecr => vec![(instr.qubits[0], 1), (instr.qubits[1], 3)],
        Gate::Can { .. } | Gate::Rzz(_) | Gate::Cx | Gate::Cz => {
            instr.qubits.iter().map(|&q| (q, 1)).collect()
        }
        _ => Vec::new(),
    }
}

/// True when scheduling `a` and `b` concurrently creates an
/// un-suppressible aligned-pattern crosstalk context.
pub fn gates_conflict(device: &Device, a: &Instruction, b: &Instruction) -> bool {
    for (qa, ra) in roles(a) {
        for (qb, rb) in roles(b) {
            if ra == rb && device.crosstalk.connected(qa, qb) {
                return true;
            }
        }
    }
    false
}

/// Splits every two-qubit layer so that no two concurrent gates
/// conflict. Greedy first-fit: each gate goes into the earliest
/// sub-layer where it fits.
pub fn avoid_contexts(layered: &LayeredCircuit, device: &Device) -> (LayeredCircuit, AvoidReport) {
    let mut out = LayeredCircuit {
        num_qubits: layered.num_qubits,
        num_clbits: layered.num_clbits,
        layers: Vec::new(),
    };
    let mut report = AvoidReport::default();
    for layer in &layered.layers {
        if layer.kind != LayerKind::TwoQubit {
            out.layers.push(layer.clone());
            continue;
        }
        report.layers_in += 1;
        let mut sublayers: Vec<Vec<Instruction>> = Vec::new();
        for instr in &layer.instructions {
            let mut placed = false;
            for sub in &mut sublayers {
                let conflict = sub.iter().any(|g| gates_conflict(device, g, instr));
                if !conflict {
                    sub.push(instr.clone());
                    placed = true;
                    break;
                } else {
                    report.conflicts += 1;
                }
            }
            if !placed {
                sublayers.push(vec![instr.clone()]);
            }
        }
        report.layers_out += sublayers.len();
        for sub in sublayers {
            out.layers.push(Layer {
                kind: LayerKind::TwoQubit,
                instructions: sub,
            });
        }
    }
    (out, report)
}

/// Pass wrapper for pipelines.
pub struct AvoidContextsPass;

impl crate::pass::Pass for AvoidContextsPass {
    fn name(&self) -> &'static str {
        "avoid-contexts"
    }
    fn run(
        &self,
        ir: crate::pass::Ir,
        ctx: &mut crate::pass::Context<'_>,
    ) -> Result<crate::pass::Ir, crate::error::CompileError> {
        let layered = ir.try_layered(self.name())?;
        let (out, _) = avoid_contexts(&layered, ctx.device);
        Ok(crate::pass::Ir::Layered(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_circuit::{stratify, Circuit};
    use ca_device::{uniform_device, Topology};

    #[test]
    fn adjacent_controls_are_separated() {
        // ECR(1,0) ∥ ECR(2,3) on a line: controls 1,2 adjacent → split.
        let device = uniform_device(Topology::line(4), 60.0);
        let mut qc = Circuit::new(4, 0);
        qc.ecr(1, 0).ecr(2, 3);
        let (out, report) = avoid_contexts(&stratify(&qc), &device);
        assert_eq!(report.layers_in, 1);
        assert_eq!(report.layers_out, 2);
        assert!(report.conflicts >= 1);
        let two_q: Vec<_> = out
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::TwoQubit)
            .collect();
        assert_eq!(two_q.len(), 2);
        assert_eq!(two_q[0].instructions.len(), 1);
    }

    #[test]
    fn control_target_adjacency_is_allowed() {
        // ECR(0,1) ∥ ECR(2,3): qubits 1 (target) and 2 (control) are
        // adjacent, but their echo patterns are orthogonal → no split.
        let device = uniform_device(Topology::line(4), 60.0);
        let mut qc = Circuit::new(4, 0);
        qc.ecr(0, 1).ecr(2, 3);
        let (out, report) = avoid_contexts(&stratify(&qc), &device);
        assert_eq!(report.layers_out, 1);
        assert_eq!(report.conflicts, 0);
        assert_eq!(
            out.layers
                .iter()
                .filter(|l| l.kind == LayerKind::TwoQubit)
                .count(),
            1
        );
    }

    #[test]
    fn canonical_gates_always_conflict_when_adjacent() {
        // Two adjacent Can gates share the Seq1 pattern on all qubits.
        let device = uniform_device(Topology::line(4), 60.0);
        let mut qc = Circuit::new(4, 0);
        qc.can(0.1, 0.1, 0.1, 0, 1).can(0.1, 0.1, 0.1, 2, 3);
        let (_, report) = avoid_contexts(&stratify(&qc), &device);
        assert_eq!(report.layers_out, 2);
    }

    #[test]
    fn distant_gates_untouched() {
        let device = uniform_device(Topology::line(6), 60.0);
        let mut qc = Circuit::new(6, 0);
        qc.ecr(1, 0).ecr(4, 5); // controls 1 and 4 far apart
        let (_, report) = avoid_contexts(&stratify(&qc), &device);
        assert_eq!(report.layers_out, 1);
    }

    #[test]
    fn logical_order_preserved() {
        let device = uniform_device(Topology::line(4), 60.0);
        let mut qc = Circuit::new(4, 0);
        qc.h(0).ecr(1, 0).ecr(2, 3).sx(2);
        let layered = stratify(&qc);
        let (out, _) = avoid_contexts(&layered, &device);
        let gates = |l: &LayeredCircuit| {
            l.to_circuit(false)
                .instructions
                .iter()
                .filter(|i| i.gate != Gate::Barrier)
                .count()
        };
        assert_eq!(gates(&layered), gates(&out));
    }
}

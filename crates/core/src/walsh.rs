//! The Walsh–Hadamard dynamical-decoupling sequence dictionary
//! (Sec. III-C and Fig. 5b of the paper).
//!
//! Sequences are indexed by *sequency* (number of sign flips over the
//! window). Key properties, each tested below:
//!
//! * every sequence `k ≥ 1` has zero mean → suppresses single-qubit Z;
//! * any two distinct sequences have zero-mean product → suppresses ZZ
//!   between any pair of differently-colored qubits;
//! * lower sequency ⇒ fewer pulses, so the compiler's greedy coloring
//!   naturally minimises pulse count by preferring low colors.
//!
//! Sequency 1 (`τ/2−X−τ/2−X`) matches the paper's target-spectator
//! sequence and the ECR control echo pattern; sequency 2
//! (`τ/4−X−τ/2−X−τ/4`) matches the control-spectator sequence; the
//! ECR target rotary corresponds to sequency 3.

/// Resolution of the dictionary: sign vectors over `2^M` sub-intervals
/// (supports sequencies 1 … 2^M − 1 = 15).
const M: usize = 4;

/// Number of distinct sequences available (sequency 1..=15).
pub const MAX_SEQUENCY: usize = (1 << M) - 1;

fn paley_signs(p: usize) -> Vec<i8> {
    // Paley function: sign(i) = (−1)^{popcount(p & bitrev-ish index)}.
    // Using natural bit order of the interval index against p.
    let len = 1 << M;
    (0..len)
        .map(|i| {
            // Interval index bits, MSB = coarsest Rademacher.
            let mut parity = 0u32;
            for b in 0..M {
                if p & (1 << b) != 0 {
                    // Rademacher r_{b+1} flips 2^{b+1} times: sign from
                    // bit (M-1-b) of i.
                    parity ^= ((i >> (M - 1 - b)) & 1) as u32;
                }
            }
            if parity == 0 {
                1
            } else {
                -1
            }
        })
        .collect()
}

fn flips(signs: &[i8]) -> usize {
    signs.windows(2).filter(|w| w[0] != w[1]).count()
}

/// The sign vector (over `2^M` equal sub-intervals) of the
/// sequency-`k` Walsh function, `1 ≤ k ≤ MAX_SEQUENCY`.
pub fn walsh_signs(k: usize) -> Vec<i8> {
    assert!((1..=MAX_SEQUENCY).contains(&k), "sequency {k} out of range");
    // Order all Paley functions by their flip count; flip counts are a
    // permutation of 0..2^M−1, so sequency k picks the unique function
    // with k flips.
    for p in 1..(1 << M) {
        let s = paley_signs(p);
        if flips(&s) == k {
            return s;
        }
    }
    unreachable!("sequency {k} must exist"); // ca-lint: allow(panic) -- Walsh sequency table covers 0..n by construction
}

/// Fractional pulse positions for the sequency-`k` sequence: one π
/// pulse per sign flip, plus a closing pulse at 1.0 when the flip
/// count is odd so the frame is restored by the window's end.
pub fn walsh_pulse_fractions(k: usize) -> Vec<f64> {
    let signs = walsh_signs(k);
    let len = signs.len() as f64;
    let mut out: Vec<f64> = signs
        .windows(2)
        .enumerate()
        .filter(|(_, w)| w[0] != w[1])
        .map(|(i, _)| (i as f64 + 1.0) / len)
        .collect();
    if out.len() % 2 == 1 {
        out.push(1.0);
    }
    out
}

/// Number of pulses used by sequency `k`.
pub fn pulse_count(k: usize) -> usize {
    walsh_pulse_fractions(k).len()
}

/// Mean of a sign vector (exactly 0 for every k ≥ 1).
pub fn mean(signs: &[i8]) -> f64 {
    signs.iter().map(|&s| s as f64).sum::<f64>() / signs.len() as f64
}

/// Mean of the elementwise product of two sign vectors (exactly 0 for
/// distinct sequencies — the ZZ-suppression condition).
pub fn product_mean(a: &[i8], b: &[i8]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x * y) as f64)
        .sum::<f64>()
        / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequency_counts_flips() {
        for k in 1..=MAX_SEQUENCY {
            assert_eq!(flips(&walsh_signs(k)), k, "sequency {k}");
        }
    }

    #[test]
    fn zero_mean_suppresses_z() {
        for k in 1..=MAX_SEQUENCY {
            assert_eq!(
                mean(&walsh_signs(k)),
                0.0,
                "sequency {k} must have zero mean"
            );
        }
    }

    #[test]
    fn pairwise_orthogonality_suppresses_zz() {
        for a in 1..=MAX_SEQUENCY {
            for b in 1..=MAX_SEQUENCY {
                let pm = product_mean(&walsh_signs(a), &walsh_signs(b));
                if a == b {
                    assert_eq!(pm, 1.0);
                } else {
                    assert_eq!(pm, 0.0, "sequencies {a},{b} must be orthogonal");
                }
            }
        }
    }

    #[test]
    fn paper_sequences_match() {
        // Sequency 1: flip at 1/2, closing pulse at 1 → τ/2−X−τ/2−X.
        assert_eq!(walsh_pulse_fractions(1), vec![0.5, 1.0]);
        // Sequency 2: flips at 1/4 and 3/4 → τ/4−X−τ/2−X−τ/4.
        assert_eq!(walsh_pulse_fractions(2), vec![0.25, 0.75]);
        // Sequency 3: flips at 1/4, 1/2, 3/4 plus closing pulse.
        assert_eq!(walsh_pulse_fractions(3), vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn pulse_counts_monotone_enough() {
        // Lower colors should not use more pulses than roughly their
        // sequency; exact counts: flips rounded up to even.
        for k in 1..=MAX_SEQUENCY {
            assert_eq!(pulse_count(k), k + (k % 2));
        }
    }

    #[test]
    fn frame_restored() {
        for k in 1..=MAX_SEQUENCY {
            assert_eq!(
                walsh_pulse_fractions(k).len() % 2,
                0,
                "even pulse count restores frame"
            );
        }
    }
}

//! Device-scale dynamic circuits: measurement-based Bell-pair
//! distribution along heavy-hex chains of the 127-qubit Eagle
//! lattice — the Fig. 9 scenario turned into a scalable workload
//! class.
//!
//! A GHZ state is grown along a simple path of the coupling graph;
//! every interior qubit is then measured in the X basis and the
//! outcomes are fed forward as conditional `Z` corrections on the far
//! endpoint, leaving the two chain ends sharing a Bell pair. The
//! measurement-plus-feed-forward window is long (~5 µs), and during
//! it the idle endpoints accrue `U11` crosstalk with their measured
//! chain neighbour (an *outcome-conditioned* phase — the Fig. 9 error
//! mechanism) and with their idle off-chain neighbours. CA-EC appends
//! the Fig. 9b compensation per endpoint: unconditional
//! `Rz⊗Rz·Rzz` for each idle pair and a **conditional** virtual `Rz`
//! for the measured edge, parameterised by an estimate τ of the
//! window length. Sweeping τ calibrates the feed-forward latency:
//! fidelity peaks where the estimate matches the truth.
//!
//! Everything here is Clifford + feed-forward + diagonal
//! compensation, so `Engine::Auto` resolves the 127-qubit circuits to
//! the bit-parallel batched frame engine: a full chain-length × τ
//! sweep runs in seconds where the dense engine could not represent
//! even one shot.

use crate::report::{Figure, Series};
use crate::runner::Budget;
use ca_circuit::{Circuit, Gate, Pauli, PauliString};
use ca_core::append_measure_compensation;
use ca_device::{presets, Device, Topology};
use ca_sim::{NoiseConfig, Simulator};

/// Number of qubits of the Eagle-class device.
pub const N: usize = 127;

/// The workload device: a seeded Eagle-class 127-qubit preset.
pub fn eagle_dynamic_device(seed: u64) -> Device {
    presets::eagle_like(seed)
}

/// The true idle window of the protocol: measurement plus
/// feed-forward latency (what the τ sweep should recover).
pub fn true_tau_ns(device: &Device) -> f64 {
    device.durations().measure + device.durations().feedforward
}

/// A simple path of `len` qubits through the coupling graph, found by
/// backtracking DFS with a fixed start/neighbour order so the chain
/// is deterministic for a given topology.
pub fn heavy_hex_chain(topology: &Topology, len: usize) -> Option<Vec<usize>> {
    fn extend(topology: &Topology, path: &mut Vec<usize>, used: &mut [bool], len: usize) -> bool {
        if path.len() == len {
            return true;
        }
        let mut nbrs = topology.neighbors(*path.last().expect("non-empty path")); // ca-lint: allow(panic) -- walk starts from a seeded non-empty path
        nbrs.sort_unstable();
        for n in nbrs {
            if !used[n] {
                used[n] = true;
                path.push(n);
                if extend(topology, path, used, len) {
                    return true;
                }
                path.pop();
                used[n] = false;
            }
        }
        false
    }
    if len == 0 || len > topology.num_qubits {
        return None;
    }
    for start in 0..topology.num_qubits {
        let mut used = vec![false; topology.num_qubits];
        used[start] = true;
        let mut path = vec![start];
        if extend(topology, &mut path, &mut used, len) {
            return Some(path);
        }
    }
    None
}

/// Builds the Bell-distribution circuit on an even-length `chain`
/// (≥ 4 qubits) with an optional CA-EC compensation block assuming a
/// measure-window length of `tau_est_ns` (0 disables compensation).
///
/// Entanglement swapping, fully parallel: Bell pairs on the links
/// `(c₂ᵢ, c₂ᵢ₊₁)`, one Bell measurement per interior link
/// `(c₂ₛ₊₁, c₂ₛ₊₂)` (CX, H, measure both), then the endpoint
/// corrections `Z^p·X^q` fed forward per swap outcome. The parallel
/// structure keeps the endpoints' only long idle the measurement +
/// feed-forward window itself — the window the τ estimate models.
/// Swap `s` writes classical bits `2s` (Z part) and `2s+1` (X part).
pub fn bell_chain_circuit(device: &Device, chain: &[usize], tau_est_ns: f64) -> Circuit {
    let l = chain.len();
    assert!(
        l >= 4 && l.is_multiple_of(2),
        "chain must pair up: even length ≥ 4"
    );
    let pairs = l / 2;
    let swaps = pairs - 1;
    let mut qc = Circuit::new(device.num_qubits(), 2 * swaps);
    // Parallel Bell-pair preparation on every other link.
    for i in 0..pairs {
        qc.h(chain[2 * i]);
        qc.cx(chain[2 * i], chain[2 * i + 1]);
    }
    qc.barrier(chain.to_vec());
    // Parallel Bell measurements on the interior links.
    for s in 0..swaps {
        qc.cx(chain[2 * s + 1], chain[2 * s + 2]);
        qc.h(chain[2 * s + 1]);
    }
    // Synchronise so every measurement window starts together.
    qc.barrier(chain.to_vec());
    for s in 0..swaps {
        qc.measure(chain[2 * s + 1], 2 * s);
        qc.measure(chain[2 * s + 2], 2 * s + 1);
    }
    // CA-EC: per endpoint, compensate the measured chain edge
    // (conditional Rz) and every idle–idle edge to off-chain
    // neighbours (unconditional Rz⊗Rz·Rzz) over the estimated
    // window. Appended *before* the corrections: the compensation is
    // virtual and must sit in the coherent banks when the physical
    // conditional-X correction flushes them.
    if tau_est_ns > 0.0 {
        let far = chain[l - 1];
        for (end, aux, clbit) in [
            (chain[0], chain[1], 0usize),
            (far, chain[l - 2], 2 * swaps - 1),
        ] {
            let mut idle: Vec<usize> = vec![end];
            idle.extend(
                device
                    .topology
                    .neighbors(end)
                    .into_iter()
                    .filter(|nb| !chain.contains(nb)),
            );
            append_measure_compensation(&mut qc, device, aux, clbit, &idle, tau_est_ns);
        }
    }
    // Feed-forward: the deferred swap corrections compose to
    // `Z^(Σp)·X^(Σq)` on the far endpoint.
    let far = chain[l - 1];
    for s in 0..swaps {
        qc.gate_if(Gate::Z, [far], 2 * s, true);
        qc.gate_if(Gate::X, [far], 2 * s + 1, true);
    }
    qc
}

/// The endpoint Bell fidelity `F = (1 + ⟨XX⟩ − ⟨YY⟩ + ⟨ZZ⟩)/4` of one
/// protocol configuration, plus the engine the simulator resolved to.
pub fn bell_chain_fidelity(
    sim: &Simulator,
    device: &Device,
    chain: &[usize],
    tau_est_ns: f64,
    shots: usize,
    seed: u64,
) -> (f64, String) {
    let qc = bell_chain_circuit(device, chain, tau_est_ns);
    let sc = ca_circuit::schedule_asap(&qc, device.durations());
    let (a, b) = (chain[0], chain[chain.len() - 1]);
    let obs: Vec<PauliString> = [Pauli::X, Pauli::Y, Pauli::Z]
        .iter()
        .map(|&p| {
            let mut s = PauliString::identity(sc.num_qubits);
            s.paulis[a] = p;
            s.paulis[b] = p;
            s
        })
        .collect();
    let engine = sim
        .engine_name_for(&sc)
        .expect("resolve engine") // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
        .to_string();
    let vals = sim.expect_paulis(&sc, &obs, shots, seed).expect("simulate"); // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
    ((1.0 + vals[0] - vals[1] + vals[2]) / 4.0, engine)
}

/// One chain length's sweep results.
#[derive(Clone, Debug)]
pub struct DynamicChainResult {
    /// Number of qubits in the chain.
    pub chain_len: usize,
    /// Engine the simulator resolved to (must be "frame-batch").
    pub engine: String,
    /// Uncompensated Bell fidelity.
    pub bare: f64,
    /// Swept window estimates (ns).
    pub taus_ns: Vec<f64>,
    /// Compensated fidelity per τ estimate.
    pub compensated: Vec<f64>,
    /// The protocol's true window length (ns).
    pub true_tau_ns: f64,
    /// Wall-clock seconds for this chain's full sweep.
    pub wall_s: f64,
}

impl DynamicChainResult {
    /// Index of the best τ estimate.
    pub fn peak_index(&self) -> usize {
        self.compensated
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Runs the device-scale dynamic sweep: for every chain length, the
/// bare protocol plus a τ sweep of `tau_fracs · τ_true`. Shots per
/// point are `budget.trajectories · budget.instances`.
pub fn dynamic_127(
    chain_lens: &[usize],
    tau_fracs: &[f64],
    budget: &Budget,
) -> (Figure, Vec<DynamicChainResult>) {
    let device = eagle_dynamic_device(budget.seed);
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let sim = Simulator::with_config(device.clone(), noise);
    let shots = budget.trajectories * budget.instances;
    let truth = true_tau_ns(&device);
    let mut results = Vec::new();
    let mut fig = Figure::new(
        "dynamic_127",
        "Bell distribution along heavy-hex chains: fidelity vs assumed window",
        "tau estimate / true window",
        "Bell fidelity F",
    );
    for &len in chain_lens {
        let chain = heavy_hex_chain(&device.topology, len).expect("chain fits the lattice"); // ca-lint: allow(panic) -- requested chain lengths fit the 127-qubit heavy-hex lattice
        let start = std::time::Instant::now(); // ca-lint: allow(wall-clock) -- bench wall-time metadata only; never feeds results
        let (bare, engine) = bell_chain_fidelity(&sim, &device, &chain, 0.0, shots, budget.seed);
        let taus_ns: Vec<f64> = tau_fracs.iter().map(|f| f * truth).collect();
        let compensated: Vec<f64> = taus_ns
            .iter()
            .map(|&tau| bell_chain_fidelity(&sim, &device, &chain, tau, shots, budget.seed).0)
            .collect();
        fig.push(Series::new(
            format!("L={len} CA-EC"),
            tau_fracs.to_vec(),
            compensated.clone(),
        ));
        fig.push(Series::new(
            format!("L={len} bare"),
            tau_fracs.to_vec(),
            vec![bare; tau_fracs.len()],
        ));
        results.push(DynamicChainResult {
            chain_len: len,
            engine,
            bare,
            taus_ns,
            compensated,
            true_tau_ns: truth,
            wall_s: start.elapsed().as_secs_f64(),
        });
    }
    fig.note(format!(
        "true window = {:.2} us (measurement {:.1} + feed-forward {:.2}); \
         127-qubit Eagle lattice, Engine::Auto -> frame-batch",
        truth / 1000.0,
        device.durations().measure / 1000.0,
        device.durations().feedforward / 1000.0
    ));
    (fig, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_device::uniform_device;

    #[test]
    fn chain_is_a_simple_coupled_path() {
        let topo = Topology::heavy_hex_127();
        for len in [3usize, 9, 21, 33] {
            let chain = heavy_hex_chain(&topo, len).expect("chain exists");
            assert_eq!(chain.len(), len);
            let mut seen = std::collections::BTreeSet::new();
            for &q in &chain {
                assert!(seen.insert(q), "qubit {q} repeated");
            }
            for w in chain.windows(2) {
                assert!(topo.has_edge(w[0], w[1]), "({}, {}) uncoupled", w[0], w[1]);
            }
        }
    }

    #[test]
    fn ideal_protocol_distributes_a_perfect_bell_pair() {
        // Zero noise: conditional corrections must land the endpoints
        // exactly on |Φ+⟩ for every chain length — this is the
        // feed-forward exactness test at scale (Auto → frame-batch).
        let device = uniform_device(Topology::heavy_hex_127(), 0.0);
        let sim = Simulator::with_config(device.clone(), NoiseConfig::ideal());
        for len in [4usize, 8, 16] {
            let chain = heavy_hex_chain(&device.topology, len).expect("chain");
            let (f, engine) = bell_chain_fidelity(&sim, &device, &chain, 0.0, 200, 7);
            assert_eq!(engine, "frame-batch");
            assert!((f - 1.0).abs() < 1e-12, "L={len}: F={f}");
        }
    }

    #[test]
    fn compensation_recovers_fidelity_at_true_tau() {
        let budget = Budget::quick();
        let (_, results) = dynamic_127(&[8], &[0.5, 1.0, 1.5], &budget);
        let r = &results[0];
        assert_eq!(r.engine, "frame-batch");
        let at_truth = r.compensated[1];
        assert!(
            at_truth > r.bare + 0.15,
            "compensated {at_truth} must beat bare {}",
            r.bare
        );
    }
}

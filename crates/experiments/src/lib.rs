#![forbid(unsafe_code)]
//! # ca-experiments
//!
//! Experiment drivers reproducing every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the index). Each driver
//! returns a [`report::Figure`] that the benchmark harness renders as
//! a text table.

#![warn(missing_docs)]

pub mod characterize;
pub mod combined;
pub mod dynamic;
pub mod dynamic_127;
pub mod heisenberg;
pub mod ising;
pub mod large_scale;
pub mod layer_fidelity;
pub mod pec;
pub mod ramsey;
pub mod report;
pub mod runner;
pub mod secondary;
pub mod table1;

pub use report::{Figure, Series};
pub use runner::Budget;

//! Fig. 7: first-order Trotterized Heisenberg dynamics on a 12-spin
//! ring, and the resulting error-mitigation overhead estimate.
//!
//! Each time step applies the canonical gate `Can(α,β,γ)` (Eq. 5) on
//! every ring edge, split into three disjoint layers (the heavy-hex
//! embedding of Fig. 7a needs 3 colors). The paper's circuit at d = 5
//! uses 180 CNOTs at CNOT-depth 45 — 3 CNOTs per canonical gate; we
//! execute the canonical gates natively with 3-CNOT-equivalent
//! duration and error, which preserves that accounting.

use crate::report::{Figure, Series};
use crate::runner::{averaged_expectations, averaged_expectations_with, Budget};
use ca_circuit::canonical::heisenberg_can_angles;
use ca_circuit::{Circuit, Pauli, PauliString};
use ca_core::strategies::{CaDdPass, CaEcPass, TwirlPass, UniformDdPass};
use ca_core::{
    CaDdConfig, CaEcConfig, CompileOptions, DecomposeCanPass, PassManager, Strategy,
    DEFAULT_DMIN_NS,
};
use ca_device::{presets, Device, Topology};
use ca_metrics::DepolarizationModel;
use ca_sim::NoiseConfig;

/// Ring size (the paper's 12 spins).
pub const N: usize = 12;

/// The three disjoint edge layers of the ring: edge `(i, i+1)` goes to
/// layer `i mod 3` (a proper 3-edge-coloring of an even ring; the
/// heavy-hex embedding forces 3 layers as in Fig. 7a).
pub fn edge_layers() -> [Vec<(usize, usize)>; 3] {
    let mut layers: [Vec<(usize, usize)>; 3] = Default::default();
    for i in 0..N {
        layers[i % 3].push((i, (i + 1) % N));
    }
    layers
}

/// Builds the d-step Trotter circuit from the Néel state, with each
/// canonical interaction decomposed into its 3-ECR hardware form (the
/// paper's circuit: 180 CNOTs at CNOT-depth 45 for d = 5). The idle
/// ring qubits of each layer then experience the real spectator and
/// idle contexts of Fig. 3 during the ECR sub-gates and 1q fixups.
pub fn trotter_circuit(d: usize, j: (f64, f64, f64), dt: f64) -> Circuit {
    let (alpha, beta, gamma) = heisenberg_can_angles(j.0, j.1, j.2, dt);
    let mut qc = Circuit::new(N, 0);
    // Néel initial state |010101…⟩.
    for q in (1..N).step_by(2) {
        qc.x(q);
    }
    qc.barrier(Vec::<usize>::new());
    for _ in 0..d {
        for layer in edge_layers() {
            for (a, b) in layer {
                for instr in ca_circuit::canonical::can_to_ecr(alpha, beta, gamma, a, b) {
                    qc.push(instr);
                }
            }
            qc.barrier(Vec::<usize>::new());
        }
    }
    qc
}

/// The native-`Can` variant of the Trotter circuit (one gate per
/// interaction) — used by tests and by consumers who want the compact
/// logical form with CA-EC's free γ-absorption.
pub fn trotter_circuit_native(d: usize, j: (f64, f64, f64), dt: f64) -> Circuit {
    let (alpha, beta, gamma) = heisenberg_can_angles(j.0, j.1, j.2, dt);
    let mut qc = Circuit::new(N, 0);
    for q in (1..N).step_by(2) {
        qc.x(q);
    }
    qc.barrier(Vec::<usize>::new());
    for _ in 0..d {
        for layer in edge_layers() {
            for (a, b) in layer {
                qc.can(alpha, beta, gamma, a, b);
            }
            qc.barrier(Vec::<usize>::new());
        }
    }
    qc
}

/// The observable of Fig. 7c: ⟨Z₂⟩.
pub fn z2_observable() -> PauliString {
    PauliString::single(N, 2, Pauli::Z)
}

/// The Fig. 7 device: a *crosstalk-dominated* calibration on the ring
/// — strong always-on ZZ with clean gates, the regime in which the
/// paper's Heisenberg experiment shows its strategy separation (on a
/// gate-error-dominated device every suppression strategy is equally
/// helpless, since none of them touches depolarizing gate noise).
pub fn heisenberg_device(seed: u64) -> Device {
    let profile = ca_device::NoiseProfile {
        zz_khz: (50.0, 150.0),
        err_2q: (5e-4, 2e-3),
        err_1q: (5e-5, 2e-4),
        ..ca_device::NoiseProfile::default()
    };
    let cal = presets::sample_calibration(&Topology::ring(N), &profile, seed);
    Device::new("nazca_like_crosstalk_dominated", Topology::ring(N), cal)
}

/// Result of the Fig. 7 experiment.
#[derive(Clone, Debug)]
pub struct HeisenbergResult {
    /// The ⟨Z₂⟩ curves (Fig. 7c).
    pub figure: Figure,
    /// Mitigation overhead at the deepest point per strategy
    /// (Fig. 7d), as `(label, overhead)`.
    pub overhead: Vec<(String, f64)>,
}

/// Runs Fig. 7c/7d.
pub fn fig7(depths: &[usize], budget: &Budget) -> HeisenbergResult {
    let device = heisenberg_device(23);
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let j = (1.0, 1.0, 1.0);
    let dt = 0.2;
    let obs = [z2_observable()];
    let xs: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
    let mut fig = Figure::new(
        "fig7c",
        "Heisenberg ring Trotter dynamics",
        "step d",
        "<Z2>",
    );

    let ideal: Vec<f64> = depths
        .iter()
        .map(|&d| {
            averaged_expectations(
                &device,
                &NoiseConfig::ideal(),
                &trotter_circuit(d, j, dt),
                &obs,
                &CompileOptions::untwirled(Strategy::Bare, budget.seed),
                &Budget {
                    trajectories: 1,
                    instances: 1,
                    seed: budget.seed,
                },
            )
            .expect("experiment")[0] // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
        })
        .collect();
    fig.push(Series::new("ideal", xs.clone(), ideal.clone()));

    // The paper's workflow: twirl and compensate at the *logical*
    // canonical-gate level (CA-EC absorbs into the interaction γ for
    // free), then lower to ECR, then insert DD on the lowered schedule.
    let make_pipeline = |label: &'static str| -> PassManager {
        let mut pm = PassManager::new();
        pm.push(TwirlPass);
        if label == "CA-EC" {
            pm.push(CaEcPass {
                config: CaEcConfig::default(),
            });
        }
        pm.push(DecomposeCanPass);
        match label {
            "DD" => {
                pm.push(UniformDdPass {
                    d_min: DEFAULT_DMIN_NS,
                });
            }
            "CA-DD" => {
                pm.push(CaDdPass {
                    config: CaDdConfig::default(),
                });
            }
            _ => {}
        }
        pm
    };
    let mut measured: Vec<(String, Vec<f64>)> = Vec::new();
    for label in ["no suppression", "DD", "CA-DD", "CA-EC"] {
        let ys: Vec<f64> = depths
            .iter()
            .map(|&d| {
                averaged_expectations_with(
                    &device,
                    &noise,
                    &trotter_circuit_native(d, j, dt),
                    &obs,
                    |_| make_pipeline(label),
                    budget,
                )
                .expect("experiment")[0] // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
            })
            .collect();
        fig.push(Series::new(label, xs.clone(), ys.clone()));
        measured.push((label.to_string(), ys));
    }

    // Fig. 7d: global-depolarization overhead at the deepest point.
    let d_max = *depths.last().expect("non-empty depths") as f64; // ca-lint: allow(panic) -- depth list is a non-empty module constant
    let mut overhead = Vec::new();
    for (label, ys) in &measured {
        let model = DepolarizationModel::fit(&xs, ys, &ideal);
        overhead.push((label.clone(), model.overhead_at(d_max)));
    }
    let c = trotter_circuit(*depths.last().unwrap(), j, dt); // ca-lint: allow(panic) -- depth list is a non-empty module constant
    fig.note(format!(
        "circuit at d={}: {} ECR gates (paper: 180 CNOTs at d=5), 2q-depth {} (paper: 45 at d=5)",
        depths.last().unwrap(), // ca-lint: allow(panic) -- depth list is a non-empty module constant
        c.count_gate("ecr"),
        c.two_qubit_depth(),
    ));
    fig.note("paper: CA-EC/CA-DD recover the d=4 oscillation; uniform DD does not");
    HeisenbergResult {
        figure: fig,
        overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_counts_match_paper_at_d5() {
        // The paper: 180 CNOTs, CNOT depth 45 at d = 5.
        let qc = trotter_circuit(5, (1.0, 1.0, 1.0), 0.2);
        assert_eq!(qc.count_gate("ecr"), 180);
        assert_eq!(qc.two_qubit_depth(), 45);
        // The native form: 60 canonical gates, canonical depth 15.
        let native = trotter_circuit_native(5, (1.0, 1.0, 1.0), 0.2);
        assert_eq!(native.count_gate("can"), 60);
        assert_eq!(native.two_qubit_depth(), 15);
    }

    #[test]
    fn decomposed_and_native_circuits_agree_ideally() {
        let device = heisenberg_device(23);
        let obs = [z2_observable()];
        let run = |qc: &ca_circuit::Circuit| {
            averaged_expectations(
                &device,
                &NoiseConfig::ideal(),
                qc,
                &obs,
                &CompileOptions::untwirled(Strategy::Bare, 1),
                &Budget {
                    trajectories: 1,
                    instances: 1,
                    seed: 1,
                },
            )
            .expect("experiment")[0]
        };
        let a = run(&trotter_circuit(2, (1.0, 1.0, 1.0), 0.2));
        let b = run(&trotter_circuit_native(2, (1.0, 1.0, 1.0), 0.2));
        assert!((a - b).abs() < 1e-9, "decomposed {a} vs native {b}");
    }

    #[test]
    fn edge_layers_are_disjoint_and_cover_ring() {
        let layers = edge_layers();
        let mut all: Vec<(usize, usize)> = layers.iter().flatten().copied().collect();
        assert_eq!(all.len(), N);
        for layer in &layers {
            let mut seen = std::collections::BTreeSet::new();
            for &(a, b) in layer {
                assert!(seen.insert(a), "layer reuses qubit {a}");
                assert!(seen.insert(b), "layer reuses qubit {b}");
            }
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), N);
    }

    #[test]
    fn ideal_dynamics_leave_neel_state() {
        // With J ≠ 0 the Néel state is not stationary: ⟨Z₂⟩ must move
        // away from +1... qubit 2 starts in |0⟩ → ⟨Z₂⟩ = +1 at d = 0.
        let device = heisenberg_device(23);
        let obs = [z2_observable()];
        let v0 = averaged_expectations(
            &device,
            &NoiseConfig::ideal(),
            &trotter_circuit(0, (1.0, 1.0, 1.0), 0.2),
            &obs,
            &CompileOptions::untwirled(Strategy::Bare, 1),
            &Budget {
                trajectories: 1,
                instances: 1,
                seed: 1,
            },
        )
        .expect("experiment")[0];
        assert!((v0 - 1.0).abs() < 1e-9);
        let v3 = averaged_expectations(
            &device,
            &NoiseConfig::ideal(),
            &trotter_circuit(3, (1.0, 1.0, 1.0), 0.2),
            &obs,
            &CompileOptions::untwirled(Strategy::Bare, 1),
            &Budget {
                trajectories: 1,
                instances: 1,
                seed: 1,
            },
        )
        .expect("experiment")[0];
        assert!((v3 - 1.0).abs() > 0.05, "dynamics must evolve: {v3}");
    }

    #[test]
    fn twirling_preserves_ideal_dynamics() {
        // The diagonal P⊗P twirl of canonical gates must not change the
        // logical circuit.
        let device = heisenberg_device(23);
        let obs = [z2_observable()];
        let bare = averaged_expectations(
            &device,
            &NoiseConfig::ideal(),
            &trotter_circuit(2, (1.0, 1.0, 1.0), 0.2),
            &obs,
            &CompileOptions::untwirled(Strategy::Bare, 1),
            &Budget {
                trajectories: 1,
                instances: 1,
                seed: 1,
            },
        )
        .expect("experiment")[0];
        let twirled = averaged_expectations(
            &device,
            &NoiseConfig::ideal(),
            &trotter_circuit(2, (1.0, 1.0, 1.0), 0.2),
            &obs,
            &CompileOptions::new(Strategy::Bare, 5),
            &Budget {
                trajectories: 1,
                instances: 3,
                seed: 5,
            },
        )
        .expect("experiment")[0];
        assert!(
            (bare - twirled).abs() < 1e-9,
            "bare {bare} vs twirled {twirled}"
        );
    }
}

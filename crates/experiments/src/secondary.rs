//! Fig. 4: characterization of the secondary error sources.
//!
//! * (a) AC Stark shift of a spectator while its neighbour is driven;
//! * (b) charge-parity beating (`ν ± δ`, Eq. 6);
//! * (c) next-nearest-neighbour ZZ from a frequency collision and its
//!   suppression up the Walsh hierarchy.

use crate::report::{Figure, Series};
use crate::runner::{
    all_zeros_fidelity, all_zeros_fidelity_observables, averaged_expectations_with, Budget,
};
use ca_circuit::{Circuit, PauliString};
use ca_core::strategies::{CaDdPass, StaggeredDdPass, UniformDdPass};
use ca_core::{CaDdConfig, PassManager, DEFAULT_DMIN_NS};
use ca_device::{uniform_device, Calibration, Device, NnnTerm, Topology};
use ca_metrics::{beat_frequencies, peak_frequency};
use ca_sim::{NoiseConfig, Simulator};

/// Result of the Fig. 4a Stark spectroscopy.
#[derive(Clone, Debug)]
pub struct StarkResult {
    /// Spectator precession frequency with the neighbour idle (kHz).
    pub idle_peak_khz: f64,
    /// Spectator precession frequency with the neighbour driven (kHz).
    pub driven_peak_khz: f64,
    /// Calibrated Stark shift (kHz).
    pub calibrated_khz: f64,
}

/// Fig. 4a: measure the spectator Ramsey frequency with and without
/// gates on the neighbour; the displacement is the Stark shift.
pub fn stark_spectroscopy(budget: &Budget) -> StarkResult {
    let stark = 20.0; // kHz, the paper's observed magnitude
    let mut dev = uniform_device(Topology::line(2), 0.0);
    dev.calibration.stark_khz.insert((1, 0), stark);
    let noise = NoiseConfig {
        readout_error: false,
        decoherence: false,
        ..NoiseConfig::default()
    };
    let sim = Simulator::with_config(dev.clone(), noise);
    let x0 = PauliString::parse("XI").unwrap(); // ca-lint: allow(panic) -- literal Pauli string parses

    let total_ns = 100_000.0;
    let points = 60;
    let mut ts_ms = Vec::new();
    let mut driven = Vec::new();
    let mut idle = Vec::new();
    for k in 0..points {
        let t = total_ns * k as f64 / (points - 1) as f64;
        // Driven: neighbour runs back-to-back X pairs for duration t.
        let mut qc = Circuit::new(2, 0);
        qc.h(0);
        let n_gates = ((t / dev.durations().one_qubit) as usize) & !1usize;
        for _ in 0..n_gates {
            qc.x(1);
        }
        let sc = ca_circuit::schedule_asap(&qc, dev.durations());
        driven.push(
            sim.expect_pauli(&sc, &x0, budget.trajectories.max(1), budget.seed)
                .expect("simulate"), // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
        );
        // Idle: same wall time with nothing on the neighbour.
        let mut qi = Circuit::new(2, 0);
        qi.h(0).delay(t, 1);
        let sci = ca_circuit::schedule_asap(&qi, dev.durations());
        idle.push(
            sim.expect_pauli(&sci, &x0, budget.trajectories.max(1), budget.seed)
                .expect("simulate"), // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
        );
        ts_ms.push(t * 1e-6); // ns → ms so frequencies read in kHz
    }
    let driven_peak = peak_frequency(&ts_ms, &driven, 1.0, 60.0, 600);
    let idle_peak = peak_frequency(&ts_ms, &idle, 1.0, 60.0, 600);
    StarkResult {
        idle_peak_khz: idle_peak,
        driven_peak_khz: driven_peak,
        calibrated_khz: stark,
    }
}

/// Result of the Fig. 4b charge-parity experiment.
#[derive(Clone, Debug)]
pub struct ChargeParityResult {
    /// The applied (known) rotation frequency (kHz).
    pub known_khz: f64,
    /// Extracted beat centre frequency (kHz).
    pub center_khz: f64,
    /// Extracted parity splitting δ (kHz).
    pub delta_khz: f64,
    /// Calibrated δ (kHz).
    pub calibrated_khz: f64,
}

/// Fig. 4b: a Ramsey fringe at a known frequency beats against the
/// shot-to-shot ±δ charge-parity term.
pub fn charge_parity_beating(budget: &Budget) -> ChargeParityResult {
    let delta = 25.0; // kHz
    let known = 100.0; // kHz
    let mut dev = uniform_device(Topology::line(1), 0.0);
    dev.calibration.qubits[0].charge_parity_khz = delta;
    dev.calibration.qubits[0].quasistatic_khz = 0.0;
    let noise = NoiseConfig {
        readout_error: false,
        decoherence: false,
        ..NoiseConfig::default()
    };
    let sim = Simulator::with_config(dev.clone(), noise);
    let x = PauliString::parse("X").unwrap(); // ca-lint: allow(panic) -- literal Pauli string parses

    let total_ns = 80_000.0;
    let points = 80;
    let mut ts_ms = Vec::new();
    let mut ys = Vec::new();
    for k in 0..points {
        let t = total_ns * k as f64 / (points - 1) as f64;
        let mut qc = Circuit::new(1, 0);
        qc.h(0).delay(t, 0);
        // The intentional, known rotation.
        qc.rz(2.0 * std::f64::consts::PI * known * 1e3 * t * 1e-9, 0);
        let sc = ca_circuit::schedule_asap(&qc, dev.durations());
        // Average over many parity samples.
        ys.push(
            sim.expect_pauli(&sc, &x, (budget.trajectories * 8).max(64), budget.seed)
                .expect("simulate"), // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
        );
        ts_ms.push(t * 1e-6);
    }
    let (center, half_split) = beat_frequencies(&ts_ms, &ys, 40.0, 160.0, 1200);
    ChargeParityResult {
        known_khz: known,
        center_khz: center,
        delta_khz: half_split,
        calibrated_khz: delta,
    }
}

/// The collision device of Fig. 4c: a 3-qubit line whose outer qubits
/// share an enhanced NNN ZZ term.
pub fn collision_device(zz_khz: f64, nnn_khz: f64) -> Device {
    let topo = Topology::line(3);
    let mut cal = Calibration::uniform(3, &topo.edges, zz_khz);
    cal.nnn.push(NnnTerm {
        i: 0,
        j: 1,
        k: 2,
        zz_khz: nnn_khz,
    });
    Device::new("collision", topo, cal)
}

/// Fig. 4c: Ramsey fidelity of all three collision qubits under the DD
/// hierarchy: none < aligned < staggered < Walsh.
pub fn nnn_walsh(depths: &[usize], budget: &Budget) -> Figure {
    let device = collision_device(50.0, 10.0);
    // Coherent crosstalk + quasi-static detuning: the processes the DD
    // hierarchy addresses. T1/T2 trajectory sampling would only add
    // an identical decay floor (and estimator variance) to all curves.
    let noise = NoiseConfig {
        readout_error: false,
        decoherence: false,
        charge_parity: false,
        ..NoiseConfig::default()
    };
    let tau = 1000.0;
    let build = |d: usize| {
        let mut qc = Circuit::new(3, 0);
        qc.h(0).h(1).h(2);
        qc.barrier(Vec::<usize>::new());
        for _ in 0..d {
            qc.delay(tau, 0).delay(tau, 1).delay(tau, 2);
            qc.barrier(Vec::<usize>::new());
        }
        qc.h(0).h(1).h(2);
        qc
    };
    let sequences: [(&str, fn() -> PassManager); 4] = [
        ("none", || PassManager::new()),
        ("aligned", || {
            let mut pm = PassManager::new();
            pm.push(UniformDdPass {
                d_min: DEFAULT_DMIN_NS,
            });
            pm
        }),
        ("staggered", || {
            let mut pm = PassManager::new();
            pm.push(StaggeredDdPass {
                d_min: DEFAULT_DMIN_NS,
            });
            pm
        }),
        ("Walsh", || {
            let mut pm = PassManager::new();
            pm.push(CaDdPass {
                config: CaDdConfig::default(),
            });
            pm
        }),
    ];
    let mut fig = Figure::new(
        "fig4c",
        "NNN collision suppression",
        "depth d",
        "Ramsey fidelity",
    );
    let xs: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
    let obs = all_zeros_fidelity_observables(3, &[0, 1, 2]);
    for (label, mk) in sequences {
        let ys: Vec<f64> = depths
            .iter()
            .map(|&d| {
                let vals =
                    averaged_expectations_with(&device, &noise, &build(d), &obs, |_| mk(), budget);
                all_zeros_fidelity(&vals.expect("experiment")) // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
            })
            .collect();
        fig.push(Series::new(label, xs.clone(), ys));
    }
    fig.note("paper: progressively more cancellation going up the Walsh hierarchy");
    fig
}

/// Renders Fig. 4a/4b results into a printable figure-style summary.
pub fn fig4_summary(budget: &Budget) -> Figure {
    let stark = stark_spectroscopy(budget);
    let cp = charge_parity_beating(budget);
    let mut fig = Figure::new("fig4ab", "secondary error characterization", "row", "kHz");
    fig.push(Series::new(
        "measured",
        vec![0.0, 1.0, 2.0],
        vec![
            stark.driven_peak_khz - stark.idle_peak_khz,
            cp.center_khz,
            cp.delta_khz,
        ],
    ));
    fig.push(Series::new(
        "calibrated/known",
        vec![0.0, 1.0, 2.0],
        vec![stark.calibrated_khz, cp.known_khz, cp.calibrated_khz],
    ));
    fig.note("row 0: Stark shift (driven − idle peak); row 1: Ramsey centre; row 2: parity δ");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stark_shift_measured_close_to_calibration() {
        let r = stark_spectroscopy(&Budget::quick());
        let shift = r.driven_peak_khz - r.idle_peak_khz;
        assert!(
            (shift - r.calibrated_khz).abs() < 5.0,
            "measured {shift} vs calibrated {}",
            r.calibrated_khz
        );
    }

    #[test]
    fn charge_parity_splitting_recovered() {
        let r = charge_parity_beating(&Budget::quick());
        assert!(
            (r.center_khz - r.known_khz).abs() < 8.0,
            "center {}",
            r.center_khz
        );
        assert!(
            (r.delta_khz - r.calibrated_khz).abs() < 8.0,
            "delta {}",
            r.delta_khz
        );
    }

    #[test]
    fn walsh_beats_staggered_on_collision() {
        let fig = nnn_walsh(&[10], &Budget::quick());
        let get = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.last_y())
                .unwrap()
        };
        assert!(
            get("Walsh") > get("staggered") + 0.01,
            "walsh {} stag {}",
            get("Walsh"),
            get("staggered")
        );
        assert!(
            get("staggered") > get("none"),
            "stag {} none {}",
            get("staggered"),
            get("none")
        );
    }
}

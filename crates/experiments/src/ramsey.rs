//! Fig. 3: Ramsey characterization of the four error contexts and
//! their suppression.
//!
//! * **Case I** (Fig. 3c): two jointly idle coupled qubits — `U11`
//!   errors; aligned DD cancels only the local Z, staggered DD and EC
//!   remove everything coherent; EC's asymptote is set by stochastic
//!   low-frequency noise it cannot touch.
//! * **Case II** (Fig. 3d): spectator of an ECR control — residual Z.
//! * **Case III** (Fig. 3e): spectator of an ECR target — residual Z.
//! * **Case IV** (Fig. 3f): adjacent controls of parallel ECRs — ZZ
//!   survives the echoes; DD cannot be applied, only EC helps.

use crate::report::{Figure, Series};
use crate::runner::{
    all_zeros_fidelity, all_zeros_fidelity_observables, averaged_expectations_with, Budget,
};
use ca_circuit::Circuit;
use ca_core::strategies::{CaDdPass, CaEcPass, StaggeredDdPass, UniformDdPass};
use ca_core::{CaDdConfig, CaEcConfig, PassManager, DEFAULT_DMIN_NS};
use ca_device::{uniform_device, Device, Topology};
use ca_sim::NoiseConfig;

/// Configuration of the Fig. 3 experiments.
#[derive(Clone, Debug)]
pub struct RamseyConfig {
    /// Depths d (number of idle intervals / layer repetitions).
    pub depths: Vec<usize>,
    /// Idle interval τ per layer (paper: 500 ns).
    pub tau_ns: f64,
    /// Always-on ZZ rate for the uniform test device (kHz).
    pub zz_khz: f64,
    /// Execution budget.
    pub budget: Budget,
}

impl RamseyConfig {
    /// Quick profile for tests.
    pub fn quick() -> Self {
        Self {
            depths: vec![0, 4, 8, 12],
            tau_ns: 500.0,
            zz_khz: 100.0,
            budget: Budget::quick(),
        }
    }

    /// Full profile for the benchmark harness.
    pub fn full() -> Self {
        Self {
            depths: (0..=30).step_by(2).collect(),
            tau_ns: 500.0,
            zz_khz: 100.0,
            budget: Budget::full(),
        }
    }
}

fn noise() -> NoiseConfig {
    NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    }
}

/// The pipelines compared in Fig. 3, by label.
fn make_pipeline(kind: &str) -> PassManager {
    let mut pm = PassManager::new();
    match kind {
        "noisy" => {}
        "aligned DD" => {
            pm.push(UniformDdPass {
                d_min: DEFAULT_DMIN_NS,
            });
        }
        "staggered DD" => {
            pm.push(StaggeredDdPass {
                d_min: DEFAULT_DMIN_NS,
            });
        }
        "CA-DD" => {
            pm.push(CaDdPass {
                config: CaDdConfig::default(),
            });
        }
        "EC" => {
            pm.push(CaEcPass {
                config: CaEcConfig::default(),
            });
        }
        "aligned DD + EC" => {
            pm.push(CaEcPass {
                config: CaEcConfig {
                    zz_only: true,
                    ..CaEcConfig::default()
                },
            });
            pm.push(UniformDdPass {
                d_min: DEFAULT_DMIN_NS,
            });
        }
        other => panic!("unknown pipeline {other}"), // ca-lint: allow(panic) -- fail loudly on an unknown pipeline name from the CLI
    }
    pm
}

fn ramsey_fidelity(
    device: &Device,
    circuit: &Circuit,
    register: &[usize],
    kind: &str,
    budget: &Budget,
) -> f64 {
    let obs = all_zeros_fidelity_observables(circuit.num_qubits, register);
    let vals = averaged_expectations_with(
        device,
        &noise(),
        circuit,
        &obs,
        |_seed| make_pipeline(kind),
        budget,
    );
    all_zeros_fidelity(&vals.expect("experiment")) // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
}

fn run_case(
    id: &str,
    title: &str,
    device: &Device,
    build: impl Fn(usize) -> Circuit,
    register: &[usize],
    pipelines: &[&str],
    config: &RamseyConfig,
) -> Figure {
    let mut fig = Figure::new(id, title, "depth d", "Ramsey fidelity");
    let xs: Vec<f64> = config.depths.iter().map(|&d| d as f64).collect();
    for &kind in pipelines {
        let ys: Vec<f64> = config
            .depths
            .iter()
            .map(|&d| ramsey_fidelity(device, &build(d), register, kind, &config.budget))
            .collect();
        fig.push(Series::new(kind, xs.clone(), ys));
    }
    fig
}

/// Case I (Fig. 3c): jointly idle coupled pair.
pub fn case_i(config: &RamseyConfig) -> Figure {
    let device = uniform_device(Topology::line(2), config.zz_khz);
    let tau = config.tau_ns;
    let build = |d: usize| {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(1);
        qc.barrier(Vec::<usize>::new());
        for _ in 0..d {
            qc.delay(tau, 0).delay(tau, 1);
            qc.barrier(Vec::<usize>::new());
        }
        qc.h(0).h(1);
        qc
    };
    let mut fig = run_case(
        "fig3c",
        "case I: jointly idle pair",
        &device,
        build,
        &[0, 1],
        &[
            "noisy",
            "aligned DD",
            "staggered DD",
            "EC",
            "aligned DD + EC",
        ],
        config,
    );
    fig.note("paper: aligned DD alone cannot remove ZZ; EC / staggered DD / DD+EC recover");
    fig
}

/// Case II (Fig. 3d): idle spectator of an ECR *control*.
pub fn case_ii(config: &RamseyConfig) -> Figure {
    let device = uniform_device(Topology::line(3), config.zz_khz);
    let build = |d: usize| {
        let mut qc = Circuit::new(3, 0);
        qc.h(0);
        qc.barrier(Vec::<usize>::new());
        for _ in 0..d {
            qc.ecr(1, 2);
            qc.barrier(Vec::<usize>::new());
        }
        qc.h(0);
        qc
    };
    let mut fig = run_case(
        "fig3d",
        "case II: control spectator",
        &device,
        build,
        &[0],
        &["noisy", "EC", "CA-DD"],
        config,
    );
    fig.note("paper: spectator suffers a pure Z error; both EC and properly-phased DD flatten it");
    fig
}

/// Case III (Fig. 3e): idle spectator of an ECR *target*.
pub fn case_iii(config: &RamseyConfig) -> Figure {
    let device = uniform_device(Topology::line(3), config.zz_khz);
    let build = |d: usize| {
        let mut qc = Circuit::new(3, 0);
        qc.h(2);
        qc.barrier(Vec::<usize>::new());
        for _ in 0..d {
            qc.ecr(0, 1);
            qc.barrier(Vec::<usize>::new());
        }
        qc.h(2);
        qc
    };
    let mut fig = run_case(
        "fig3e",
        "case III: target spectator",
        &device,
        build,
        &[2],
        &["noisy", "EC", "CA-DD"],
        config,
    );
    fig.note("paper: rotary echoes refocus the ZZ; the leftover Z is absorbed or decoupled");
    fig
}

/// Case IV (Fig. 3f): adjacent controls of two parallel ECRs.
pub fn case_iv(config: &RamseyConfig) -> Figure {
    let device = uniform_device(Topology::line(4), config.zz_khz);
    // Only even depths keep the logical circuit an identity
    // (ECR is self-inverse).
    let even_depths: Vec<usize> = config.depths.iter().map(|&d| d * 2).collect();
    let cfg = RamseyConfig {
        depths: even_depths,
        ..config.clone()
    };
    let build = |d: usize| {
        let mut qc = Circuit::new(4, 0);
        qc.h(1).h(2);
        qc.barrier(Vec::<usize>::new());
        for _ in 0..d {
            qc.ecr(1, 0).ecr(2, 3);
            qc.barrier(Vec::<usize>::new());
        }
        qc.h(1).h(2);
        qc
    };
    let mut fig = run_case(
        "fig3f",
        "case IV: adjacent ECR controls",
        &device,
        build,
        &[1, 2],
        &["noisy", "EC", "CA-DD"],
        &cfg,
    );
    fig.note("paper: gate echoes align, ZZ survives; DD is inapplicable, only EC suppresses");
    fig
}

/// All four Fig. 3 panels.
pub fn all_cases(config: &RamseyConfig) -> Vec<Figure> {
    vec![
        case_i(config),
        case_ii(config),
        case_iii(config),
        case_iv(config),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_i_ec_and_staggered_beat_bare() {
        let cfg = RamseyConfig {
            depths: vec![12],
            ..RamseyConfig::quick()
        };
        let fig = case_i(&cfg);
        let get = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.last_y())
                .unwrap()
        };
        let bare = get("noisy");
        let ec = get("EC");
        let stag = get("staggered DD");
        assert!(ec > bare + 0.05, "EC {ec} vs bare {bare}");
        assert!(stag > bare + 0.05, "staggered {stag} vs bare {bare}");
    }

    #[test]
    fn case_i_aligned_dd_fails_on_zz() {
        // At a depth where the accumulated ZZ angle is large, aligned
        // DD must underperform staggered DD clearly.
        // θ per interval = 2π·100 kHz·500 ns ≈ 0.314 → d = 10 gives
        // θ ≈ π (fidelity minimum for aligned DD).
        let cfg = RamseyConfig {
            depths: vec![10],
            ..RamseyConfig::quick()
        };
        let fig = case_i(&cfg);
        let get = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.last_y())
                .unwrap()
        };
        assert!(
            get("staggered DD") > get("aligned DD") + 0.2,
            "staggered {} vs aligned {}",
            get("staggered DD"),
            get("aligned DD")
        );
    }

    #[test]
    fn case_iv_only_ec_helps() {
        let cfg = RamseyConfig {
            depths: vec![5],
            ..RamseyConfig::quick()
        };
        let fig = case_iv(&cfg);
        let get = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.last_y())
                .unwrap()
        };
        let bare = get("noisy");
        let ec = get("EC");
        let cadd = get("CA-DD");
        assert!(ec > bare + 0.05, "EC {ec} vs bare {bare}");
        assert!(
            ec > cadd + 0.05,
            "EC {ec} vs CA-DD {cadd} (DD cannot fix case IV)"
        );
    }

    #[test]
    fn case_ii_and_iii_suppression() {
        let cfg = RamseyConfig {
            depths: vec![10],
            ..RamseyConfig::quick()
        };
        for fig in [case_ii(&cfg), case_iii(&cfg)] {
            let get = |label: &str| {
                fig.series
                    .iter()
                    .find(|s| s.label == label)
                    .map(|s| s.last_y())
                    .unwrap()
            };
            let bare = get("noisy");
            let ec = get("EC");
            assert!(ec > bare - 0.02, "{}: EC {ec} vs bare {bare}", fig.id);
        }
    }
}

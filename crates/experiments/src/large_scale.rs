//! Full-device layer-fidelity / DD benchmarking on heavy-hex devices
//! from the 127-qubit Eagle class up through 433-qubit Osprey and
//! 1121-qubit Condor — the scale regime of the paper's flagship
//! experiments (Figs. 6–8 ran on 100+ qubit IBM machines) and beyond.
//! Every entry point reads its width from the session's device, so
//! the same sparse-layer protocol runs unchanged at any lattice size.
//!
//! A dense statevector cannot touch this: 2¹²⁷ amplitudes. The
//! bit-parallel batched frame engine (`Engine::Auto` resolves to it
//! at this scale) runs it in a fraction of a second because the
//! benchmark circuits are Clifford (ECR layers, DD X pulses, twirl
//! Paulis) with Pauli-twirled stochastic noise — exactly the
//! approximation the paper's own twirled experiments realise
//! physically — propagated 64 shots per machine word.
//!
//! Protocol (the Fig. 8 layer-fidelity recipe scaled to the whole
//! device): a *sparse* disjoint ECR layer (every other edge of the
//! largest edge-coloring class, ~24 gates) leaves ~half the lattice
//! idle, reproducing the contexts that separate the strategies —
//! jointly idle neighbours (only staggered/CA DD cancels their ZZ),
//! idle spectators of ECR controls (context-unaware pulses *break*
//! the gate's internal echo), and gate–gate adjacencies. Every qubit
//! is covered by a partition (gate pairs, adjacent idle pairs, idle
//! singles); per partition a random non-identity Pauli is prepared,
//! tracked through the layer's Clifford action, and its
//! sign-corrected expectation fitted to a decay over depth. The layer
//! fidelity is the product of per-partition decays and the PEC base
//! is `γ = LF^{−2}`. CA-EC is deliberately absent from *this*
//! benchmark: its Rz/Rzz compensation angles are non-Clifford, and
//! while the frame engines nowadays bank-fold arbitrary diagonal
//! rotations (see `ca-sim`'s engine rules), the LF comparison here
//! keeps to the strategies whose frame treatment is exact. The
//! dynamic-circuit workload (`crate::dynamic_127`) is where CA-EC
//! runs at device scale on the frame engines.

use crate::report::{Figure, Series};
use crate::runner::Budget;
use ca_circuit::clifford::propagate_2q;
use ca_circuit::{Circuit, Gate, Pauli, PauliString};
use ca_core::{
    compile_batch, compile_twirl_ensemble, ensemble_shareable, CompileOptions, Strategy,
};
use ca_device::{presets, Device, Topology};
use ca_metrics::fit_decay;
use ca_sim::{Job, NoiseConfig, Session, Simulator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of qubits of the large-scale device.
pub const N: usize = 127;

/// The benchmark device: a seeded Eagle-class 127-qubit preset.
pub fn eagle_device(seed: u64) -> Device {
    presets::eagle_like(seed)
}

/// A seeded Osprey-class 433-qubit benchmark device.
pub fn osprey_device(seed: u64) -> Device {
    presets::osprey_like(seed)
}

/// A seeded Condor-class 1121-qubit benchmark device.
pub fn condor_device(seed: u64) -> Device {
    presets::condor_like(seed)
}

/// The sparse full-device two-qubit layer: every other edge of the
/// largest color class of the coupling-graph edge coloring. Disjoint
/// by construction, and sparse enough that idle–idle adjacencies and
/// idle gate-spectators exist everywhere — the contexts the paper's
/// layer choice (Fig. 8a) was picked to exhibit.
pub fn sparse_device_layer(topology: &Topology) -> Vec<(usize, usize)> {
    let colors = topology.edge_coloring();
    let ncolors = colors.iter().max().map_or(0, |c| c + 1);
    let mut best: Vec<(usize, usize)> = Vec::new();
    for color in 0..ncolors {
        let class: Vec<(usize, usize)> = topology
            .edges
            .iter()
            .zip(colors.iter())
            .filter(|(_, &c)| c == color)
            .map(|(&e, _)| e)
            .collect();
        if class.len() > best.len() {
            best = class;
        }
    }
    best.into_iter().step_by(2).collect()
}

/// Disjoint partitions covering every qubit: the gate pairs, then
/// greedily matched adjacent idle pairs, then idle singles.
pub fn partitions(topology: &Topology, layer: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let n = topology.num_qubits;
    let mut used = vec![false; n];
    let mut parts: Vec<Vec<usize>> = Vec::new();
    for &(a, b) in layer {
        parts.push(vec![a, b]);
        used[a] = true;
        used[b] = true;
    }
    // Adjacent idle pairs (the case-I context: only staggering helps).
    for &(a, b) in &topology.edges {
        if !used[a] && !used[b] {
            parts.push(vec![a, b]);
            used[a] = true;
            used[b] = true;
        }
    }
    for q in 0..n {
        if !used[q] {
            parts.push(vec![q]);
            used[q] = true;
        }
    }
    parts
}

/// Builds the benchmark circuit: Pauli-eigenstate preparation on
/// every partition, then `d` copies of the ECR layer.
fn benchmark_circuit(
    n: usize,
    preps: &[(usize, Pauli)],
    layer: &[(usize, usize)],
    d: usize,
) -> Circuit {
    let mut qc = Circuit::new(n, 0);
    for &(q, p) in preps {
        match p {
            Pauli::I | Pauli::Z => {}
            Pauli::X => {
                qc.h(q);
            }
            Pauli::Y => {
                qc.h(q);
                qc.s(q);
            }
        }
    }
    qc.barrier(Vec::<usize>::new());
    for _ in 0..d {
        for &(c, t) in layer {
            qc.ecr(c, t);
        }
        qc.barrier(Vec::<usize>::new());
    }
    qc
}

/// Propagates a prepared Pauli string through `d` layer applications.
fn propagate_through_layers(prep: &PauliString, layer: &[(usize, usize)], d: usize) -> PauliString {
    let mut p = prep.clone();
    for _ in 0..d {
        for &(c, t) in layer {
            p = propagate_2q(&p, Gate::Ecr, c, t);
        }
    }
    p
}

/// A non-identity Pauli assignment on a partition's support.
fn sample_pauli(partition: &[usize], rng: &mut StdRng) -> Vec<(usize, Pauli)> {
    loop {
        let assignment: Vec<(usize, Pauli)> = partition
            .iter()
            .map(|&q| (q, Pauli::from_index(rng.random_range(0..4usize))))
            .collect();
        if assignment.iter().any(|(_, p)| *p != Pauli::I) {
            return assignment;
        }
    }
}

/// Layer-fidelity estimate for one strategy at device scale.
#[derive(Clone, Debug)]
pub struct LargeScaleResult {
    /// Strategy label.
    pub label: String,
    /// Engine the simulator resolved to (must be "frame-batch").
    pub engine: String,
    /// Per-partition decay rates λ.
    pub partition_lambdas: Vec<f64>,
    /// Layer fidelity LF = Π λ over all partitions.
    pub lf: f64,
    /// PEC overhead base γ = LF^{−2}.
    pub gamma: f64,
    /// Wall-clock seconds spent compiling + simulating this strategy.
    pub wall_s: f64,
}

/// Measures the full-device layer fidelity for one strategy with the
/// standard noise model (everything but readout error).
pub fn measure_large_layer_fidelity(
    device: &Device,
    strategy: Strategy,
    depths: &[usize],
    budget: &Budget,
) -> LargeScaleResult {
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    measure_large_layer_fidelity_with(device, noise, strategy, depths, budget)
}

/// [`measure_large_layer_fidelity`] with an explicit noise model
/// (ablation hook).
pub fn measure_large_layer_fidelity_with(
    device: &Device,
    noise: NoiseConfig,
    strategy: Strategy,
    depths: &[usize],
    budget: &Budget,
) -> LargeScaleResult {
    let session = Session::new(Simulator::with_config(device.clone(), noise));
    measure_large_layer_fidelity_session(&session, strategy, depths, budget)
}

/// [`measure_large_layer_fidelity_with`] against a caller-owned
/// session: sweeps that share one session reuse its plan cache across
/// strategies, depths, and repeated invocations (the cached-vs-cold
/// comparison in `benches/scaling.rs` runs exactly this way).
///
/// Each depth's twirl ensemble compiles through the shared-schedule
/// fast path when the strategy supports it — the pass pipeline and
/// timeline segmentation run once per depth, every instance re-dresses
/// the merged twirl slots — and instances fan out as session jobs.
pub fn measure_large_layer_fidelity_session(
    session: &Session,
    strategy: Strategy,
    depths: &[usize],
    budget: &Budget,
) -> LargeScaleResult {
    measure_large_layer_fidelity_session_with(session, strategy, depths, budget, true)
}

/// [`measure_large_layer_fidelity_session`] with the twirl-ensemble
/// fast path switchable: `use_ensemble = false` compiles every
/// instance through the full pass pipeline (the per-point
/// recompilation baseline the scaling bench compares against).
/// Results are bit-identical either way.
pub fn measure_large_layer_fidelity_session_with(
    session: &Session,
    strategy: Strategy,
    depths: &[usize],
    budget: &Budget,
    use_ensemble: bool,
) -> LargeScaleResult {
    let device = &session.simulator().device;
    let n = device.num_qubits();
    let layer = sparse_device_layer(&device.topology);
    let parts = partitions(&device.topology, &layer);
    let mut rng = StdRng::seed_from_u64(budget.seed ^ 0xEA61E);
    let sampled: Vec<Vec<(usize, Pauli)>> =
        parts.iter().map(|p| sample_pauli(p, &mut rng)).collect();

    // All partitions are disjoint, so every prep and observable is
    // measured simultaneously: one simulation per depth.
    let all_preps: Vec<(usize, Pauli)> = sampled.iter().flatten().copied().collect();

    let start = std::time::Instant::now(); // ca-lint: allow(wall-clock) -- bench wall-time metadata only; never feeds results
    let mut engine = String::new();
    let mut per_part: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); parts.len()];
    for &d in depths {
        let circuit = benchmark_circuit(n, &all_preps, &layer, d);
        let observables: Vec<PauliString> = sampled
            .iter()
            .map(|assignment| {
                let mut p = PauliString::identity(n);
                for &(q, pl) in assignment {
                    p.paulis[q] = pl;
                }
                propagate_through_layers(&p, &layer, d)
            })
            .collect();
        // Average over independently twirled compile instances.
        let seeds: Vec<u64> = (0..budget.instances)
            .map(|inst| {
                budget
                    .seed
                    .wrapping_add(inst as u64 * 7919)
                    .wrapping_add(d as u64)
            })
            .collect();
        let sim_seeds: Vec<u64> = seeds.iter().map(|s| s ^ 0x77).collect();
        let opts = CompileOptions::new(strategy, seeds[0]);
        // Shape/self-check failures mean the ensemble declined to
        // share this point's schedule; fall back to per-instance
        // compilation below (bit-identical results either way).
        let ensemble = if use_ensemble && ensemble_shareable(&opts) {
            compile_twirl_ensemble(&circuit, device, &opts, &seeds).ok()
        } else {
            None
        };
        let results: Vec<Vec<f64>> = if let Some(ens) = ensemble {
            engine = session
                .simulator()
                .engine_name_for(&ens.base)
                .expect("resolve engine") // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
                .to_string();
            session
                .submit_ensemble(
                    &ens.base,
                    &ens.dressings,
                    &observables,
                    budget.trajectories,
                    &sim_seeds,
                )
                .into_iter()
                .map(|r| r.expect("simulate")) // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
                .collect()
        } else {
            // Per-instance compilation fans the pass pipeline out
            // across worker threads (results in seed order, identical
            // to serial compilation) — at 433/1121 qubits one pipeline
            // walk is expensive enough that compiling instances
            // serially would dominate the point's cold-start.
            let opt_list: Vec<CompileOptions> = seeds
                .iter()
                .map(|&seed| CompileOptions { seed, ..opts })
                .collect();
            let jobs: Vec<Job> = compile_batch(&circuit, device, &opt_list, None)
                .into_iter()
                .zip(sim_seeds.iter())
                .map(|(sc, &sim_seed)| {
                    let sc = sc.expect("compile"); // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
                    engine = session
                        .simulator()
                        .engine_name_for(&sc)
                        .expect("resolve engine") // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
                        .to_string();
                    Job::expect(sc, observables.clone(), budget.trajectories, sim_seed)
                })
                .collect();
            session
                .submit(&jobs)
                .into_iter()
                .map(|r| {
                    r.expect("simulate") // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
                        .expectations()
                        .expect("expect job") // ca-lint: allow(panic) -- this module submits expect jobs only
                        .to_vec()
                })
                .collect()
        };
        let mut acc = vec![0.0; observables.len()];
        for vals in &results {
            for (a, v) in acc.iter_mut().zip(vals.iter()) {
                *a += v;
            }
        }
        for (i, a) in acc.iter().enumerate() {
            per_part[i].0.push(d as f64);
            per_part[i].1.push(a / budget.instances as f64);
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    let partition_lambdas: Vec<f64> = per_part
        .iter()
        .map(|(xs, ys)| fit_decay(xs, ys).lambda.clamp(0.0, 1.0))
        .collect();
    let lf: f64 = partition_lambdas.iter().product();
    LargeScaleResult {
        label: strategy.label().to_string(),
        engine,
        partition_lambdas,
        lf,
        gamma: ca_metrics::gamma_from_layer_fidelity(lf.max(1e-9)).expect("clamped LF is positive"), // ca-lint: allow(panic) -- layer fidelity is clamped positive on the previous line
        wall_s,
    }
}

/// Runs the large-scale comparison across the Clifford-compatible
/// strategies (bare, uniform DD, CA-DD).
pub fn fig_large_scale(depths: &[usize], budget: &Budget) -> (Figure, Vec<LargeScaleResult>) {
    let device = eagle_device(127);
    let strategies = [Strategy::Bare, Strategy::UniformDd, Strategy::CaDd];
    let results: Vec<LargeScaleResult> = strategies
        .iter()
        .map(|&s| measure_large_layer_fidelity(&device, s, depths, budget))
        .collect();
    let xs: Vec<f64> = (0..results.len()).map(|i| i as f64).collect();
    let mut fig = Figure::new(
        "fig_large_scale",
        "127-qubit heavy-hex full-device layer fidelity",
        "strategy",
        "value",
    );
    fig.push(Series::new(
        "LF",
        xs.clone(),
        results.iter().map(|r| r.lf).collect(),
    ));
    fig.push(Series::new(
        "gamma",
        xs,
        results.iter().map(|r| r.gamma).collect(),
    ));
    for (i, r) in results.iter().enumerate() {
        fig.note(format!(
            "strategy {i} = {} [{} engine, {:.2}s]",
            r.label, r.engine, r.wall_s
        ));
    }
    fig.note("infeasible on the dense engine: 2^127 amplitudes");
    (fig, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::{pipeline, Context};

    #[test]
    fn layer_is_disjoint_and_sparse() {
        let topo = Topology::heavy_hex_127();
        let layer = sparse_device_layer(&topo);
        assert!(layer.len() >= 20, "sparse layer size: {}", layer.len());
        let mut seen = [false; N];
        for &(a, b) in &layer {
            assert!(topo.has_edge(a, b));
            assert!(!seen[a] && !seen[b], "pair ({a},{b}) overlaps");
            seen[a] = true;
            seen[b] = true;
        }
        // Sparse: at least a third of the device idles.
        let busy = seen.iter().filter(|s| **s).count();
        assert!(busy <= 2 * N / 3, "{busy} busy of {N}");
    }

    #[test]
    fn partitions_cover_every_qubit_disjointly() {
        let topo = Topology::heavy_hex_127();
        let layer = sparse_device_layer(&topo);
        let parts = partitions(&topo, &layer);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>());
        // The sparse layer must produce at least one adjacent idle pair
        // (the case-I context DD staggering exists for).
        let idle_pairs = parts.iter().filter(|p| {
            p.len() == 2 && !layer.contains(&(p[0], p[1])) && !layer.contains(&(p[1], p[0]))
        });
        assert!(idle_pairs.count() >= 5);
    }

    #[test]
    fn propagation_stays_on_pair() {
        let topo = Topology::heavy_hex_127();
        let layer = sparse_device_layer(&topo);
        let (a, b) = layer[0];
        let mut prep = PauliString::identity(N);
        prep.paulis[a] = Pauli::X;
        prep.paulis[b] = Pauli::Z;
        let out = propagate_through_layers(&prep, &layer, 3);
        for (q, p) in out.paulis.iter().enumerate() {
            if q != a && q != b {
                assert_eq!(*p, Pauli::I, "leaked to qubit {q}");
            }
        }
    }

    #[test]
    fn frame_batch_engine_is_selected_at_this_scale() {
        let device = eagle_device(127);
        let layer = sparse_device_layer(&device.topology);
        let preps = [(layer[0].0, Pauli::Z), (layer[0].1, Pauli::Z)];
        let circuit = benchmark_circuit(N, &preps, &layer, 1);
        let opts = CompileOptions::new(Strategy::CaDd, 3);
        let pm = pipeline(&opts);
        let mut ctx = Context::new(&device, 3);
        let sc = pm.compile(&circuit, &mut ctx).unwrap();
        let sim = Simulator::with_config(device.clone(), NoiseConfig::default());
        assert_eq!(sim.engine_name_for(&sc), Ok("frame-batch"));
    }

    #[test]
    fn ca_dd_beats_bare_at_device_scale() {
        let budget = Budget {
            trajectories: 96,
            instances: 1,
            seed: 11,
        };
        let device = eagle_device(127);
        let bare = measure_large_layer_fidelity(&device, Strategy::Bare, &[1, 2, 4], &budget);
        let cadd = measure_large_layer_fidelity(&device, Strategy::CaDd, &[1, 2, 4], &budget);
        assert_eq!(bare.engine, "frame-batch");
        assert_eq!(cadd.engine, "frame-batch");
        assert!(
            cadd.lf > bare.lf,
            "CA-DD LF {} must beat bare {}",
            cadd.lf,
            bare.lf
        );
    }

    #[test]
    fn sparse_layer_and_partitions_scale_to_osprey_and_condor() {
        for device in [osprey_device(3), condor_device(3)] {
            let n = device.num_qubits();
            let topo = &device.topology;
            let layer = sparse_device_layer(topo);
            let mut seen = vec![false; n];
            for &(a, b) in &layer {
                assert!(topo.has_edge(a, b));
                assert!(!seen[a] && !seen[b], "pair ({a},{b}) overlaps at {n}q");
                seen[a] = true;
                seen[b] = true;
            }
            let busy = seen.iter().filter(|s| **s).count();
            assert!(busy <= 2 * n / 3, "{busy} busy of {n}");
            let parts = partitions(topo, &layer);
            let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "coverage at {n}q");
        }
    }

    #[test]
    fn osprey_layer_fidelity_runs_on_frame_batch() {
        // The 433-qubit LF workload end to end: sparse layer, twirl
        // ensemble, batched frame engine with sharded strip sampling.
        // Kept to one strategy, two depths, and a small shot budget so
        // the debug profile stays fast; the scaling bench runs the
        // full qubit axis in release.
        let budget = Budget {
            trajectories: 64,
            instances: 1,
            seed: 5,
        };
        let device = osprey_device(5);
        let r = measure_large_layer_fidelity(&device, Strategy::CaDd, &[1, 2], &budget);
        assert_eq!(r.engine, "frame-batch");
        assert!(r.lf > 0.0 && r.lf <= 1.0, "LF {} out of range", r.lf);
        let parts = partitions(&device.topology, &sparse_device_layer(&device.topology));
        assert_eq!(r.partition_lambdas.len(), parts.len());
    }

    #[test]
    fn thousand_shot_run_completes() {
        // The acceptance-scale configuration: full sparse layer, 1000
        // shots. Kept to a single strategy and two depths here so the
        // debug test profile stays fast; the `large_scale` bench runs
        // the full sweep in release and reports wall time.
        let budget = Budget {
            trajectories: 1000,
            instances: 1,
            seed: 7,
        };
        let device = eagle_device(127);
        let r = measure_large_layer_fidelity(&device, Strategy::CaDd, &[1, 4], &budget);
        assert_eq!(r.engine, "frame-batch");
        assert!(r.lf > 0.0 && r.lf <= 1.0);
        let parts = partitions(&device.topology, &sparse_device_layer(&device.topology));
        assert_eq!(r.partition_lambdas.len(), parts.len());
    }
}

//! Fig. 10: the combined compiling strategy.
//!
//! A 6-qubit Floquet-type circuit whose measured pair (2,3) suffers
//! *both* kinds of error per step: an aligned control–control ZZ
//! during the gate layer (case IV — only EC can fix it) and idle-period
//! noise including stochastic low-frequency detuning (which only DD can
//! refocus). CA-EC+DD therefore outperforms either method alone, as in
//! the paper.

use crate::report::{Figure, Series};
use crate::runner::{
    all_zeros_fidelity, all_zeros_fidelity_observables, averaged_expectations, Budget,
};
use ca_circuit::Circuit;
use ca_core::{CompileOptions, Strategy};
use ca_device::{uniform_device, Device, Topology};
use ca_sim::NoiseConfig;

/// Number of qubits.
pub const N: usize = 6;

/// The Fig. 10 device: strong enough quasi-static noise that DD's
/// advantage over EC on idle periods is visible.
pub fn combined_device() -> Device {
    let mut dev = uniform_device(Topology::line(N), 80.0);
    for q in &mut dev.calibration.qubits {
        q.quasistatic_khz = 10.0;
    }
    dev
}

/// Builds the d-step Floquet circuit: each step has a two-qubit layer
/// with adjacent controls on the measured pair (2,3) and an idle
/// period. Even step counts keep the logical circuit an identity.
pub fn floquet_circuit(d: usize, idle_ns: f64) -> Circuit {
    let mut qc = Circuit::new(N, 0);
    qc.h(2).h(3);
    qc.barrier(Vec::<usize>::new());
    for _ in 0..d {
        qc.ecr(2, 1).ecr(3, 4);
        qc.barrier(Vec::<usize>::new());
        for q in 0..N {
            qc.delay(idle_ns, q);
        }
        qc.barrier(Vec::<usize>::new());
    }
    qc.h(2).h(3);
    qc
}

/// Runs the Fig. 10b comparison: P₀₀ of the measured pair vs step.
pub fn fig10(depths: &[usize], budget: &Budget) -> Figure {
    let device = combined_device();
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let obs = all_zeros_fidelity_observables(N, &[2, 3]);
    // Even depths only (ECR self-inverse).
    let even: Vec<usize> = depths.iter().map(|&d| d * 2).collect();
    let xs: Vec<f64> = even.iter().map(|&d| d as f64).collect();
    let mut fig = Figure::new(
        "fig10",
        "combined strategy Floquet benchmark",
        "step d",
        "P00",
    );
    for (label, strategy) in [
        ("twirled", Strategy::Bare),
        ("CA-DD", Strategy::CaDd),
        ("CA-EC", Strategy::CaEc),
        ("CA-EC+DD", Strategy::CaEcPlusDd),
    ] {
        let ys: Vec<f64> = even
            .iter()
            .map(|&d| {
                let vals = averaged_expectations(
                    &device,
                    &noise,
                    &floquet_circuit(d, 1000.0),
                    &obs,
                    &CompileOptions::new(strategy, budget.seed),
                    budget,
                );
                all_zeros_fidelity(&vals.expect("experiment")) // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
            })
            .collect();
        fig.push(Series::new(label, xs.clone(), ys));
    }
    fig.note("paper (ibm_penguino1): CA-EC+DD outperforms both constituents");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_is_logical_identity_at_even_depth() {
        let device = uniform_device(Topology::line(N), 0.0);
        let obs = all_zeros_fidelity_observables(N, &[2, 3]);
        let vals = averaged_expectations(
            &device,
            &NoiseConfig::ideal(),
            &floquet_circuit(4, 500.0),
            &obs,
            &CompileOptions::untwirled(Strategy::Bare, 1),
            &Budget {
                trajectories: 1,
                instances: 1,
                seed: 1,
            },
        );
        let f = all_zeros_fidelity(&vals.expect("experiment"));
        assert!((f - 1.0).abs() < 1e-9, "P00 {f}");
    }

    #[test]
    fn combined_beats_constituents() {
        // The quick budget's ±0.05 shot noise can mask the ~0.05
        // CA-EC+DD advantage; this comparison needs tighter statistics.
        let budget = Budget {
            trajectories: 64,
            instances: 6,
            seed: 11,
        };
        let fig = fig10(&[4], &budget);
        let get = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.last_y())
                .unwrap()
        };
        let combined = get("CA-EC+DD");
        let cadd = get("CA-DD");
        let bare = get("twirled");
        assert!(combined > bare, "combined {combined} vs bare {bare}");
        assert!(
            combined > cadd - 0.02,
            "combined {combined} must not lose to CA-DD {cadd}"
        );
    }
}

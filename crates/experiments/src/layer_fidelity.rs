//! Fig. 8: layer-fidelity benchmarking of a sparse 10-qubit layer.
//!
//! The layer (Fig. 8a, `ibm_nazca` qubits 37–40, 52, 56–60 relabelled
//! 0–9) contains 3 ECR gates and 4 idle qubits, with an adjacent
//! control–control pair (0,1) and an adjacent idle pair (8,9) — the
//! two contexts that separate CA-EC from CA-DD from uniform DD.
//!
//! Protocol (after McKay et al., simplified — see EXPERIMENTS.md):
//! partition the qubits into the disjoint gate pairs, the idle pair,
//! and idle singles; for each partition sample Pauli operators, track
//! them through the layer's Clifford action, and fit the decay of the
//! sign-corrected expectation over depth. The layer fidelity is the
//! product of the per-partition average decays, and the PEC overhead
//! base is `γ = LF^{−2}`.

use crate::report::{Figure, Series};
use crate::runner::Budget;
use ca_circuit::clifford::propagate_2q;
use ca_circuit::{Circuit, Gate, Pauli, PauliString};
use ca_core::{pipeline, CompileOptions, Context, Strategy};
use ca_device::{presets, Device, Topology};
use ca_metrics::fit_decay;
use ca_sim::{NoiseConfig, Simulator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The three ECR gates of the Fig. 8a layer: controls 0 and 1 are
/// crosstalk-adjacent (case IV), qubits 3, 5, 8, 9 idle, with (8, 9)
/// an adjacent idle pair.
pub const LAYER_GATES: [(usize, usize); 3] = [(0, 4), (1, 2), (7, 6)];

/// Disjoint partitions measured simultaneously.
pub fn partitions() -> Vec<Vec<usize>> {
    vec![
        vec![0, 4],
        vec![1, 2],
        vec![7, 6],
        vec![8, 9],
        vec![3],
        vec![5],
    ]
}

/// The Fig. 8 device. The paper picked this layer *because* its
/// control–control pair (Q37–Q38, our 0–1) has strong ZZ that DD
/// cannot suppress; we pin that edge to the strong end of the sampled
/// range accordingly.
pub fn fig8_device(seed: u64) -> Device {
    let mut dev = presets::nazca_like(Topology::fig8_layer(), seed);
    dev.calibration
        .edges
        .get_mut(&(0, 1))
        .expect("edge (0,1)") // ca-lint: allow(panic) -- heavy-hex devices always contain edge (0,1)
        .zz_khz = 110.0;
    dev
}

/// Builds the benchmark circuit: Pauli-eigenstate preparation on every
/// partition, then `d` copies of the layer.
fn benchmark_circuit(preps: &[(usize, Pauli)], d: usize) -> Circuit {
    let mut qc = Circuit::new(10, 0);
    for &(q, p) in preps {
        match p {
            Pauli::I | Pauli::Z => {}
            Pauli::X => {
                qc.h(q);
            }
            Pauli::Y => {
                qc.h(q);
                qc.s(q);
            }
        }
    }
    qc.barrier(Vec::<usize>::new());
    for _ in 0..d {
        for (c, t) in LAYER_GATES {
            qc.ecr(c, t);
        }
        qc.barrier(Vec::<usize>::new());
    }
    qc
}

/// Propagates the prepared Pauli string through `d` applications of
/// the layer's Clifford action.
fn propagate_through_layers(prep: &PauliString, d: usize) -> PauliString {
    let mut p = prep.clone();
    for _ in 0..d {
        for (c, t) in LAYER_GATES {
            p = propagate_2q(&p, Gate::Ecr, c, t);
        }
    }
    p
}

/// Samples a non-identity Pauli on the partition's support.
fn sample_pauli(partition: &[usize], rng: &mut StdRng) -> Vec<(usize, Pauli)> {
    loop {
        let assignment: Vec<(usize, Pauli)> = partition
            .iter()
            .map(|&q| (q, Pauli::from_index(rng.random_range(0..4usize))))
            .collect();
        if assignment.iter().any(|(_, p)| *p != Pauli::I) {
            return assignment;
        }
    }
}

/// Layer-fidelity estimate for one strategy.
#[derive(Clone, Debug)]
pub struct LayerFidelity {
    /// Strategy label.
    pub label: String,
    /// Per-partition average decays λ_p.
    pub partition_lambdas: Vec<f64>,
    /// Layer fidelity LF = Π λ_p.
    pub lf: f64,
    /// PEC overhead base γ = LF^{−2}.
    pub gamma: f64,
}

/// Measures the layer fidelity under one compilation strategy.
pub fn measure_layer_fidelity(
    device: &Device,
    strategy: Strategy,
    depths: &[usize],
    paulis_per_partition: usize,
    budget: &Budget,
) -> LayerFidelity {
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let sim = Simulator::with_config(device.clone(), noise);
    let mut rng = StdRng::seed_from_u64(budget.seed ^ 0x51F8);
    let parts = partitions();
    // Sample Pauli sets once, shared across strategies via the seed.
    let sampled: Vec<Vec<Vec<(usize, Pauli)>>> = parts
        .iter()
        .map(|p| {
            (0..paulis_per_partition)
                .map(|_| sample_pauli(p, &mut rng))
                .collect()
        })
        .collect();

    let mut partition_lambdas = Vec::with_capacity(parts.len());
    for (part_idx, pauli_set) in sampled.iter().enumerate() {
        let mut lambdas = Vec::new();
        for assignment in pauli_set {
            // Expectations over depth for this prepared Pauli.
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let mut prep = PauliString::identity(10);
            for &(q, p) in assignment {
                prep.paulis[q] = p;
            }
            for &d in depths {
                let target = propagate_through_layers(&prep, d);
                let circuit = benchmark_circuit(assignment, d);
                let mut acc = 0.0;
                for inst in 0..budget.instances {
                    let seed = budget
                        .seed
                        .wrapping_add(inst as u64 * 7919)
                        .wrapping_add(part_idx as u64 * 104729);
                    let opts = CompileOptions::new(strategy, seed);
                    let pm = pipeline(&opts);
                    let mut ctx = Context::new(device, seed);
                    let sc = pm.compile(&circuit, &mut ctx).expect("compile"); // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
                    acc += sim
                        .expect_pauli(&sc, &target, budget.trajectories, seed ^ 0x77)
                        .expect("simulate"); // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
                }
                xs.push(d as f64);
                ys.push(acc / budget.instances as f64);
            }
            let fit = fit_decay(&xs, &ys);
            lambdas.push(fit.lambda.clamp(0.0, 1.0));
        }
        partition_lambdas.push(lambdas.iter().sum::<f64>() / lambdas.len() as f64);
    }
    let lf: f64 = partition_lambdas.iter().product();
    LayerFidelity {
        label: strategy.label().to_string(),
        partition_lambdas,
        lf,
        gamma: ca_metrics::gamma_from_layer_fidelity(lf.max(1e-6)).expect("clamped LF is positive"), // ca-lint: allow(panic) -- layer fidelity is clamped positive on the previous line
    }
}

/// Runs the Fig. 8 comparison across strategies.
pub fn fig8(
    depths: &[usize],
    paulis_per_partition: usize,
    budget: &Budget,
) -> (Figure, Vec<LayerFidelity>) {
    let device = fig8_device(37);
    let strategies = [
        Strategy::Bare,
        Strategy::UniformDd,
        Strategy::CaDd,
        Strategy::CaEc,
    ];
    let results: Vec<LayerFidelity> = strategies
        .iter()
        .map(|&s| measure_layer_fidelity(&device, s, depths, paulis_per_partition, budget))
        .collect();
    let xs: Vec<f64> = (0..results.len()).map(|i| i as f64).collect();
    let mut fig = Figure::new(
        "fig8",
        "layer fidelity of the sparse 10-qubit layer",
        "strategy",
        "value",
    );
    fig.push(Series::new(
        "LF",
        xs.clone(),
        results.iter().map(|r| r.lf).collect(),
    ));
    fig.push(Series::new(
        "gamma",
        xs,
        results.iter().map(|r| r.gamma).collect(),
    ));
    for (i, r) in results.iter().enumerate() {
        fig.note(format!("strategy {i} = {}", r.label));
    }
    fig.note("paper (ibm_nazca): LF 0.648 (bare) → 0.743 (DD) → 0.822 (CA-DD) → 0.881 (CA-EC)");
    fig.note("paper: γ 2.38 → 1.81 → 1.48 → 1.29");
    (fig, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_disjoint_and_cover() {
        let mut all: Vec<usize> = partitions().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn layer_gates_fit_topology() {
        let topo = Topology::fig8_layer();
        for (c, t) in LAYER_GATES {
            assert!(topo.has_edge(c, t), "({c},{t}) not coupled");
        }
        // Adjacent controls 0 and 1 (the case-IV pair of Fig. 8b).
        assert!(topo.has_edge(0, 1));
        // Adjacent idle pair (8,9).
        assert!(topo.has_edge(8, 9));
    }

    #[test]
    fn pauli_propagation_stays_in_partition() {
        // Layer gates map each gate-pair's Paulis within the pair.
        let mut prep = PauliString::identity(10);
        prep.paulis[0] = Pauli::X;
        prep.paulis[4] = Pauli::Z;
        let out = propagate_through_layers(&prep, 3);
        for (q, p) in out.paulis.iter().enumerate() {
            if !(q == 0 || q == 4) {
                assert_eq!(*p, Pauli::I, "leaked to qubit {q}");
            }
        }
    }

    #[test]
    fn ideal_layer_fidelity_is_unity() {
        let mut device = fig8_device(37);
        // Strip all noise from the calibration so even gate errors are 0.
        for q in &mut device.calibration.qubits {
            q.gate_err_1q = 0.0;
            q.readout_err = 0.0;
        }
        let keys: Vec<_> = device.calibration.edges.keys().copied().collect();
        for k in keys {
            device.calibration.edges.get_mut(&k).unwrap().gate_err_2q = 0.0;
        }
        // Noise config off via zeroed rates won't help for zz (edge zz
        // persists) — instead build an ideal-noise measurement:
        let lf = {
            let noise = NoiseConfig::ideal();
            let sim = Simulator::with_config(device.clone(), noise);
            // single Pauli, single depth sanity: ZZ on (8,9).
            let mut prep = PauliString::identity(10);
            prep.paulis[8] = Pauli::Z;
            prep.paulis[9] = Pauli::Z;
            let circuit = benchmark_circuit(&[(8, Pauli::Z), (9, Pauli::Z)], 4);
            let target = propagate_through_layers(&prep, 4);
            let opts = CompileOptions::new(Strategy::Bare, 3);
            let pm = pipeline(&opts);
            let mut ctx = Context::new(&device, 3);
            let sc = pm.compile(&circuit, &mut ctx).expect("compile");
            sim.expect_pauli(&sc, &target, 1, 9).expect("simulate")
        };
        assert!((lf - 1.0).abs() < 1e-9, "ideal expectation {lf}");
    }

    #[test]
    fn caec_beats_bare_layer_fidelity() {
        let device = fig8_device(37);
        let budget = Budget {
            trajectories: 16,
            instances: 2,
            seed: 5,
        };
        let bare = measure_layer_fidelity(&device, Strategy::Bare, &[1, 2, 4], 2, &budget);
        let caec = measure_layer_fidelity(&device, Strategy::CaEc, &[1, 2, 4], 2, &budget);
        assert!(
            caec.lf > bare.lf,
            "CA-EC LF {} must beat bare {}",
            caec.lf,
            bare.lf
        );
    }
}

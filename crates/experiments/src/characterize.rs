//! Closed-loop characterization: re-measure the device's crosstalk
//! rates from Ramsey experiments alone, as the paper's Sec. III does
//! on hardware.
//!
//! These routines treat the simulator as a black-box device: they run
//! the same pulse sequences an experimentalist would and extract rates
//! with the periodogram. Tests verify that the *measured* rates match
//! the calibration that generated the noise — closing the
//! characterize → compile loop.

use ca_circuit::{schedule_asap, Circuit, PauliString};
use ca_device::Device;
use ca_metrics::peak_frequency;
use ca_sim::{NoiseConfig, Simulator};

/// Noise configuration for clean coherent characterization.
fn coherent() -> NoiseConfig {
    NoiseConfig::coherent_only()
}

/// Measures the always-on ZZ rate (kHz) on edge `(a, b)` by preparing
/// the spectator `a` in |+⟩ with `b` excited and reading the Ramsey
/// precession frequency. The excited-neighbour precession runs at
/// `2ν` in the Eq. (1) convention, so the returned value is the
/// half-frequency.
pub fn measure_zz_khz(device: &Device, a: usize, b: usize, trajectories: usize) -> f64 {
    let sim = Simulator::with_config(device.clone(), coherent());
    let total_ns = 40_000.0;
    let points = 64;
    let mut ts_ms = Vec::with_capacity(points);
    let mut ys = Vec::with_capacity(points);
    let x_obs = PauliString::single(device.num_qubits(), a, ca_circuit::Pauli::X);
    for k in 0..points {
        let t = total_ns * k as f64 / (points - 1) as f64;
        let mut qc = Circuit::new(device.num_qubits(), 0);
        qc.x(b);
        qc.h(a);
        if t > 0.0 {
            qc.delay(t, a);
            qc.delay(t, b);
        }
        let sc = schedule_asap(&qc, device.durations());
        ys.push(
            sim.expect_pauli(&sc, &x_obs, trajectories, 7 + k as u64)
                .expect("simulate"), // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
        );
        ts_ms.push(t * 1e-6);
    }
    peak_frequency(&ts_ms, &ys, 5.0, 300.0, 1200) / 2.0
}

/// Measures the spectator's precession frequency (kHz) while `driven`
/// is continuously gated with X pulses.
///
/// The returned peak is `|stark − ν|`: the toggling neighbour spends
/// half its time excited, contributing the always-on rate `−ν` on
/// average on top of the Stark term. Isolate the Stark shift by
/// combining with the separately measured ν
/// ([`measure_zz_khz`]) — or run on an edge with negligible ZZ, as
/// Fig. 4a's isolated characterization does.
pub fn measure_stark_khz(
    device: &Device,
    driven: usize,
    spectator: usize,
    trajectories: usize,
) -> f64 {
    let sim = Simulator::with_config(device.clone(), coherent());
    let total_ns = 100_000.0;
    let points = 64;
    let x_obs = PauliString::single(device.num_qubits(), spectator, ca_circuit::Pauli::X);
    let mut ts_ms = Vec::with_capacity(points);
    let mut ys = Vec::with_capacity(points);
    for k in 0..points {
        let t = total_ns * k as f64 / (points - 1) as f64;
        let mut qc = Circuit::new(device.num_qubits(), 0);
        qc.h(spectator);
        let n_gates = ((t / device.durations().one_qubit) as usize) & !1usize;
        for _ in 0..n_gates {
            qc.x(driven);
        }
        let sc = schedule_asap(&qc, device.durations());
        ys.push(
            sim.expect_pauli(&sc, &x_obs, trajectories, 13 + k as u64)
                .expect("simulate"), // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
        );
        ts_ms.push(t * 1e-6);
    }
    peak_frequency(&ts_ms, &ys, 1.0, 80.0, 1000)
}

/// Re-characterizes every coupled pair of a device and returns
/// `(a, b, calibrated_khz, measured_khz)` rows.
pub fn characterize_all_zz(device: &Device, trajectories: usize) -> Vec<(usize, usize, f64, f64)> {
    device
        .topology
        .edges
        .iter()
        .map(|&(a, b)| {
            let measured = measure_zz_khz(device, a, b, trajectories);
            (a, b, device.calibration.zz_khz(a, b), measured)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_device::{uniform_device, Topology};

    #[test]
    fn zz_rate_recovered_within_tolerance() {
        let device = uniform_device(Topology::line(2), 85.0);
        let measured = measure_zz_khz(&device, 0, 1, 1);
        assert!(
            (measured - 85.0).abs() < 4.0,
            "measured {measured} kHz vs calibrated 85"
        );
    }

    #[test]
    fn stark_rate_recovered_on_isolated_edge() {
        let mut device = uniform_device(Topology::line(2), 0.0);
        device.calibration.stark_khz.insert((1, 0), 25.0);
        let measured = measure_stark_khz(&device, 1, 0, 1);
        assert!(
            (measured - 25.0).abs() < 4.0,
            "measured {measured} kHz vs calibrated 25"
        );
    }

    #[test]
    fn stark_measurement_carries_zz_offset() {
        // With ν = 40 kHz and Stark 25 kHz the driven-spectator peak
        // sits at |25 − 40| = 15 kHz — the documented correction.
        let mut device = uniform_device(Topology::line(2), 40.0);
        device.calibration.stark_khz.insert((1, 0), 25.0);
        let measured = measure_stark_khz(&device, 1, 0, 1);
        assert!(
            (measured - 15.0).abs() < 4.0,
            "measured {measured} kHz vs expected |stark − ν| = 15"
        );
    }

    #[test]
    fn full_device_characterization_matches() {
        let device = ca_device::nazca_like(Topology::line(3), 9);
        for (a, b, cal, meas) in characterize_all_zz(&device, 1) {
            assert!(
                (cal - meas).abs() < 0.08 * cal + 3.0,
                "edge ({a},{b}): calibrated {cal} vs measured {meas}"
            );
        }
    }
}

//! Shared experiment execution: twirl-averaged expectation values of
//! compiled circuits under the noisy simulator.

use ca_circuit::{Circuit, PauliString};
use ca_core::{pipeline, CompileOptions, Context, PassManager, Strategy};
use ca_device::Device;
use ca_sim::{NoiseConfig, Simulator};

/// Shared budget knobs: every experiment exposes a `quick` profile for
/// unit tests and a `full` profile for the benchmark harness.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Trajectories averaged per compiled instance.
    pub trajectories: usize,
    /// Independent twirl/compile instances averaged per data point.
    pub instances: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Budget {
    /// Small budget for unit tests (seconds).
    pub fn quick() -> Self {
        Self {
            trajectories: 20,
            instances: 2,
            seed: 11,
        }
    }

    /// Full budget for benchmark-quality curves.
    pub fn full() -> Self {
        Self {
            trajectories: 120,
            instances: 8,
            seed: 11,
        }
    }
}

/// Averages Pauli expectations over `instances` independently compiled
/// (re-twirled) copies of the circuit.
pub fn averaged_expectations(
    device: &Device,
    noise: &NoiseConfig,
    circuit: &Circuit,
    observables: &[PauliString],
    options: &CompileOptions,
    budget: &Budget,
) -> Vec<f64> {
    averaged_expectations_with(
        device,
        noise,
        circuit,
        observables,
        |seed| pipeline(&CompileOptions { seed, ..*options }),
        budget,
    )
}

/// Same as [`averaged_expectations`] but with a caller-supplied
/// pipeline builder (custom pass combinations, e.g. "aligned DD + EC").
pub fn averaged_expectations_with(
    device: &Device,
    noise: &NoiseConfig,
    circuit: &Circuit,
    observables: &[PauliString],
    make_pipeline: impl Fn(u64) -> PassManager,
    budget: &Budget,
) -> Vec<f64> {
    let sim = Simulator::with_config(device.clone(), *noise);
    let mut acc = vec![0.0; observables.len()];
    for inst in 0..budget.instances {
        let seed = budget.seed.wrapping_add(inst as u64 * 0x9E37);
        let pm = make_pipeline(seed);
        let mut ctx = Context::new(device, seed);
        let sc = pm.compile(circuit, &mut ctx);
        let vals = sim
            .expect_paulis(&sc, observables, budget.trajectories, seed ^ 0xABCD)
            .expect("simulate");
        for (a, v) in acc.iter_mut().zip(vals.iter()) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= budget.instances as f64;
    }
    acc
}

/// The fidelity of an n-qubit all-|+⟩ Ramsey register measured after
/// the closing Hadamards: `F = P(0…0) = 2^{-n}·Σ_S ⟨Z_S⟩` over all
/// subsets S of the register qubits.
pub fn all_zeros_fidelity_observables(num_qubits: usize, register: &[usize]) -> Vec<PauliString> {
    let k = register.len();
    assert!(k <= 10, "register too large for subset expansion");
    (0..(1usize << k))
        .map(|mask| {
            let mut p = PauliString::identity(num_qubits);
            for (bit, &q) in register.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    p.paulis[q] = ca_circuit::Pauli::Z;
                }
            }
            p
        })
        .collect()
}

/// Combines the subset expectations of
/// [`all_zeros_fidelity_observables`] into `P(0…0)`.
pub fn all_zeros_fidelity(expectations: &[f64]) -> f64 {
    expectations.iter().sum::<f64>() / expectations.len() as f64
}

/// Convenience: a [`CompileOptions`] for a strategy, untwirled.
pub fn untwirled(strategy: Strategy, seed: u64) -> CompileOptions {
    CompileOptions::untwirled(strategy, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_device::{uniform_device, Topology};

    #[test]
    fn fidelity_observables_cover_subsets() {
        let obs = all_zeros_fidelity_observables(3, &[0, 2]);
        assert_eq!(obs.len(), 4);
        // On |000⟩ every Z-subset expectation is +1 → F = 1.
        let f = all_zeros_fidelity(&[1.0; 4]);
        assert!((f - 1.0).abs() < 1e-12);
        // Uniformly random state: ⟨Z_S⟩ = 0 except identity → F = 1/4.
        let mut e = vec![0.0; 4];
        e[0] = 1.0;
        assert!((all_zeros_fidelity(&e) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn averaged_expectations_ideal_identity() {
        let dev = uniform_device(Topology::line(2), 0.0);
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(0); // logical identity
        let obs = [PauliString::parse("ZI").unwrap()];
        let got = averaged_expectations(
            &dev,
            &NoiseConfig::ideal(),
            &qc,
            &obs,
            &CompileOptions::untwirled(Strategy::Bare, 1),
            &Budget::quick(),
        );
        assert!((got[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn twirled_instances_average() {
        let dev = uniform_device(Topology::line(2), 0.0);
        let mut qc = Circuit::new(2, 0);
        qc.ecr(0, 1).ecr(0, 1); // identity up to global phase
        let obs = [PauliString::parse("ZZ").unwrap()];
        let got = averaged_expectations(
            &dev,
            &NoiseConfig::ideal(),
            &qc,
            &obs,
            &CompileOptions::new(Strategy::Bare, 5),
            &Budget::quick(),
        );
        assert!(
            (got[0] - 1.0).abs() < 1e-9,
            "twirl must preserve logic: {got:?}"
        );
    }
}

//! Shared experiment execution: twirl-averaged expectation values of
//! compiled circuits under the noisy simulator, executed as session
//! jobs.
//!
//! Every averaged estimate is a batch of independent `(instance,
//! seed)` jobs submitted to a [`ca_sim::Session`]: jobs fan out
//! across worker threads, plans compile through the session's LRU
//! cache, and — when the strategy supports it — the whole twirl
//! ensemble shares one compiled schedule via the re-dressing fast
//! path ([`ca_core::compile_twirl_ensemble`]), so a sweep point pays
//! the pass pipeline and timeline segmentation once instead of once
//! per instance. Results are bit-identical to compiling and running
//! every instance independently.

use ca_circuit::{Circuit, PauliString};
use ca_core::{
    compile_twirl_ensemble, ensemble_shareable, pipeline, CompileError, CompileOptions, Context,
    PassManager, Strategy,
};
use ca_device::Device;
use ca_sim::{Job, NoiseConfig, Session, SimError, Simulator};

/// Why an experiment run could not produce its estimate.
#[derive(Clone, Debug, PartialEq)]
pub enum ExperimentError {
    /// The compile pipeline rejected the circuit or pass stack.
    Compile(CompileError),
    /// The simulator rejected the compiled circuit.
    Sim(SimError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "compilation failed: {e}"),
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<CompileError> for ExperimentError {
    fn from(e: CompileError) -> Self {
        ExperimentError::Compile(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// Shared budget knobs: every experiment exposes a `quick` profile for
/// unit tests and a `full` profile for the benchmark harness.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Trajectories averaged per compiled instance.
    pub trajectories: usize,
    /// Independent twirl/compile instances averaged per data point.
    pub instances: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Budget {
    /// Small budget for unit tests (seconds).
    pub fn quick() -> Self {
        Self {
            trajectories: 20,
            instances: 2,
            seed: 11,
        }
    }

    /// Full budget for benchmark-quality curves.
    pub fn full() -> Self {
        Self {
            trajectories: 120,
            instances: 8,
            seed: 11,
        }
    }

    /// The per-instance compile seeds of this budget.
    pub fn instance_seeds(&self) -> Vec<u64> {
        (0..self.instances)
            .map(|inst| self.seed.wrapping_add(inst as u64 * 0x9E37))
            .collect()
    }
}

/// Averages Pauli expectations over `instances` independently
/// re-twirled copies of the circuit, through a fresh session.
pub fn averaged_expectations(
    device: &Device,
    noise: &NoiseConfig,
    circuit: &Circuit,
    observables: &[PauliString],
    options: &CompileOptions,
    budget: &Budget,
) -> Result<Vec<f64>, ExperimentError> {
    let session = Session::new(Simulator::with_config(device.clone(), *noise));
    averaged_expectations_session(&session, circuit, observables, options, budget)
}

/// [`averaged_expectations`] against a caller-owned session, so
/// sweeps reuse one plan cache across points. Twirl-shareable
/// strategies compile the ensemble once and re-dress per instance;
/// everything else compiles per instance — both paths produce
/// bit-identical results.
pub fn averaged_expectations_session(
    session: &Session,
    circuit: &Circuit,
    observables: &[PauliString],
    options: &CompileOptions,
    budget: &Budget,
) -> Result<Vec<f64>, ExperimentError> {
    let device = &session.simulator().device;
    let seeds = budget.instance_seeds();
    if ensemble_shareable(options) {
        // Shape/self-check failures are the ensemble declining to
        // share, not a compile failure: fall back to compiling every
        // instance independently (bit-identical results either way).
        match compile_twirl_ensemble(circuit, device, options, &seeds) {
            Ok(ens) => {
                let sim_seeds: Vec<u64> = seeds.iter().map(|s| s ^ 0xABCD).collect();
                let results = session.submit_ensemble(
                    &ens.base,
                    &ens.dressings,
                    observables,
                    budget.trajectories,
                    &sim_seeds,
                );
                return average(results, observables.len(), budget.instances);
            }
            Err(
                CompileError::EnsembleShapeMismatch { .. }
                | CompileError::EnsembleSelfCheckFailed { .. }
                | CompileError::EnsembleUnsupported { .. },
            ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    averaged_expectations_with_session(
        session,
        circuit,
        observables,
        |seed| pipeline(&CompileOptions { seed, ..*options }),
        budget,
    )
}

/// Same as [`averaged_expectations`] but with a caller-supplied
/// pipeline builder (custom pass combinations, e.g. "aligned DD +
/// EC").
pub fn averaged_expectations_with(
    device: &Device,
    noise: &NoiseConfig,
    circuit: &Circuit,
    observables: &[PauliString],
    make_pipeline: impl Fn(u64) -> PassManager,
    budget: &Budget,
) -> Result<Vec<f64>, ExperimentError> {
    let session = Session::new(Simulator::with_config(device.clone(), *noise));
    averaged_expectations_with_session(&session, circuit, observables, make_pipeline, budget)
}

/// [`averaged_expectations_with`] against a caller-owned session.
pub fn averaged_expectations_with_session(
    session: &Session,
    circuit: &Circuit,
    observables: &[PauliString],
    make_pipeline: impl Fn(u64) -> PassManager,
    budget: &Budget,
) -> Result<Vec<f64>, ExperimentError> {
    let device = &session.simulator().device;
    let mut jobs = Vec::with_capacity(budget.instances);
    for seed in budget.instance_seeds() {
        let pm = make_pipeline(seed);
        let mut ctx = Context::new(device, seed);
        let sc = pm.compile(circuit, &mut ctx)?;
        jobs.push(Job::expect(
            sc,
            observables.to_vec(),
            budget.trajectories,
            seed ^ 0xABCD,
        ));
    }
    average(
        session
            .submit(&jobs)
            .into_iter()
            .map(|r| {
                r.map(|out| match out {
                    ca_sim::JobOutput::Expect(v) => v,
                    _ => unreachable!("expect jobs return expectations"), // ca-lint: allow(panic) -- runner submits expect jobs only
                })
            })
            .collect(),
        observables.len(),
        budget.instances,
    )
}

/// Averages per-instance expectation vectors.
fn average(
    results: Vec<Result<Vec<f64>, SimError>>,
    width: usize,
    instances: usize,
) -> Result<Vec<f64>, ExperimentError> {
    let mut acc = vec![0.0; width];
    for vals in results {
        for (a, v) in acc.iter_mut().zip(vals?.iter()) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= instances as f64;
    }
    Ok(acc)
}

/// The fidelity of an n-qubit all-|+⟩ Ramsey register measured after
/// the closing Hadamards: `F = P(0…0) = 2^{-n}·Σ_S ⟨Z_S⟩` over all
/// subsets S of the register qubits.
pub fn all_zeros_fidelity_observables(num_qubits: usize, register: &[usize]) -> Vec<PauliString> {
    let k = register.len();
    assert!(k <= 10, "register too large for subset expansion");
    (0..(1usize << k))
        .map(|mask| {
            let mut p = PauliString::identity(num_qubits);
            for (bit, &q) in register.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    p.paulis[q] = ca_circuit::Pauli::Z;
                }
            }
            p
        })
        .collect()
}

/// Combines the subset expectations of
/// [`all_zeros_fidelity_observables`] into `P(0…0)`.
pub fn all_zeros_fidelity(expectations: &[f64]) -> f64 {
    expectations.iter().sum::<f64>() / expectations.len() as f64
}

/// Convenience: a [`CompileOptions`] for a strategy, untwirled.
pub fn untwirled(strategy: Strategy, seed: u64) -> CompileOptions {
    CompileOptions::untwirled(strategy, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_device::{uniform_device, Topology};

    #[test]
    fn fidelity_observables_cover_subsets() {
        let obs = all_zeros_fidelity_observables(3, &[0, 2]);
        assert_eq!(obs.len(), 4);
        // On |000⟩ every Z-subset expectation is +1 → F = 1.
        let f = all_zeros_fidelity(&[1.0; 4]);
        assert!((f - 1.0).abs() < 1e-12);
        // Uniformly random state: ⟨Z_S⟩ = 0 except identity → F = 1/4.
        let mut e = vec![0.0; 4];
        e[0] = 1.0;
        assert!((all_zeros_fidelity(&e) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn averaged_expectations_ideal_identity() {
        let dev = uniform_device(Topology::line(2), 0.0);
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(0); // logical identity
        let obs = [PauliString::parse("ZI").unwrap()];
        let got = averaged_expectations(
            &dev,
            &NoiseConfig::ideal(),
            &qc,
            &obs,
            &CompileOptions::untwirled(Strategy::Bare, 1),
            &Budget::quick(),
        )
        .unwrap();
        assert!((got[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn twirled_instances_average() {
        let dev = uniform_device(Topology::line(2), 0.0);
        let mut qc = Circuit::new(2, 0);
        qc.ecr(0, 1).ecr(0, 1); // identity up to global phase
        let obs = [PauliString::parse("ZZ").unwrap()];
        let got = averaged_expectations(
            &dev,
            &NoiseConfig::ideal(),
            &qc,
            &obs,
            &CompileOptions::new(Strategy::Bare, 5),
            &Budget::quick(),
        )
        .unwrap();
        assert!(
            (got[0] - 1.0).abs() < 1e-9,
            "twirl must preserve logic: {got:?}"
        );
    }

    #[test]
    fn uncompilable_pipeline_is_an_error_not_a_panic() {
        // A DD pass ordered *before* a layered-form pass: the layered
        // pass finds the circuit already scheduled and the pipeline
        // reports a structured error through the runner.
        let dev = uniform_device(Topology::line(2), 0.0);
        let mut qc = Circuit::new(2, 0);
        qc.ecr(0, 1);
        let obs = [PauliString::parse("ZZ").unwrap()];
        let err = averaged_expectations_with(
            &dev,
            &NoiseConfig::ideal(),
            &qc,
            &obs,
            |_seed| {
                let mut pm = PassManager::new();
                pm.push(ca_core::strategies::UniformDdPass { d_min: 150.0 });
                pm.push(ca_core::strategies::TwirlPass);
                pm
            },
            &Budget::quick(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExperimentError::Compile(CompileError::PassRequiresLayeredForm {
                pass: "pauli-twirl"
            })
        );
    }

    #[test]
    fn unsimulable_circuit_is_an_error_not_a_panic() {
        // A wide non-Clifford circuit: no engine supports it, and the
        // runner surfaces the simulator's structured error instead of
        // panicking mid-experiment.
        let n = 30;
        let dev = uniform_device(Topology::line(n), 0.0);
        let mut qc = Circuit::new(n, 0);
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
        qc.append(ca_circuit::Gate::Rx(0.3), [0]);
        let obs = [PauliString::identity(n)];
        let err = averaged_expectations(
            &dev,
            &NoiseConfig::ideal(),
            &qc,
            &obs,
            &CompileOptions::untwirled(Strategy::Bare, 1),
            &Budget::quick(),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                ExperimentError::Sim(SimError::NoSupportingEngine { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn ensemble_fast_path_matches_independent_compilation() {
        // The load-bearing bit-identity guarantee: for a shareable
        // strategy, the shared-schedule ensemble must give exactly
        // the per-instance-compiled result.
        let dev = uniform_device(Topology::line(4), 60.0);
        let mut qc = Circuit::new(4, 0);
        qc.h(0).h(3);
        qc.ecr(1, 2).ecr(1, 2);
        qc.h(0).h(3);
        let obs = [
            PauliString::parse("ZIII").unwrap(),
            PauliString::parse("IZZI").unwrap(),
        ];
        let noise = NoiseConfig::default();
        let budget = Budget {
            trajectories: 64,
            instances: 4,
            seed: 23,
        };
        for strategy in [Strategy::Bare, Strategy::CaDd] {
            let options = CompileOptions::new(strategy, 0);
            let fast = averaged_expectations(&dev, &noise, &qc, &obs, &options, &budget).unwrap();
            // Independent path: same pipeline per instance, no
            // ensemble sharing.
            let slow = averaged_expectations_with(
                &dev,
                &noise,
                &qc,
                &obs,
                |seed| pipeline(&CompileOptions { seed, ..options }),
                &budget,
            )
            .unwrap();
            assert_eq!(fast, slow, "{strategy:?}: ensemble must be bit-identical");
        }
    }
}

//! Fig. 6: Floquet time-evolution of a 1-D Ising chain at the Clifford
//! point.
//!
//! Each Floquet step is a layer of ECR on even–odd pairs, a layer of
//! ECR on odd–even pairs, and a layer of single-qubit X gates. The
//! boundary qubits start in |+⟩ and the boundary correlator ⟨X₀X₅⟩
//! alternates between ±1 in the ideal dynamics; the idle periods in
//! the odd–even layer expose the boundary to Z/ZZ errors that CA-EC
//! and CA-DD recover.

use crate::report::{Figure, Series};
use crate::runner::{averaged_expectations, Budget};
use ca_circuit::{Circuit, Pauli, PauliString};
use ca_core::{CompileOptions, Strategy};
use ca_device::{uniform_device, Device, Topology};
use ca_sim::NoiseConfig;

/// Number of qubits in the chain.
pub const N: usize = 6;

/// Builds the d-step Floquet Ising circuit.
pub fn floquet_circuit(d: usize) -> Circuit {
    let mut qc = Circuit::new(N, 0);
    qc.h(0).h(N - 1);
    qc.barrier(Vec::<usize>::new());
    for _ in 0..d {
        // Even–odd ECR layer.
        qc.ecr(0, 1).ecr(2, 3).ecr(4, 5);
        qc.barrier(Vec::<usize>::new());
        // Odd–even ECR layer (boundary qubits 0 and 5 idle here). The
        // orientation is chosen so the ideal boundary correlator
        // alternates +1, 0, −1, 0, +1, … (verified in tests).
        qc.ecr(2, 1).ecr(4, 3);
        qc.barrier(Vec::<usize>::new());
        // Single-qubit X layer.
        for q in 0..N {
            qc.x(q);
        }
        qc.barrier(Vec::<usize>::new());
    }
    qc
}

/// The boundary correlator observable ⟨X₀X₅⟩.
pub fn boundary_observable() -> PauliString {
    let mut p = PauliString::identity(N);
    p.paulis[0] = Pauli::X;
    p.paulis[N - 1] = Pauli::X;
    p
}

/// The device used for the Fig. 6 reproduction.
pub fn ising_device() -> Device {
    uniform_device(Topology::line(N), 80.0)
}

/// Runs Fig. 6: ideal, twirled-only, CA-EC, and CA-DD curves of
/// ⟨X₀X₅⟩ vs Floquet steps.
pub fn fig6(depths: &[usize], budget: &Budget) -> Figure {
    let device = ising_device();
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let obs = [boundary_observable()];
    let xs: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
    let mut fig = Figure::new(
        "fig6",
        "Floquet Ising boundary correlator",
        "step d",
        "<X0 X5>",
    );

    // Ideal reference.
    let ideal: Vec<f64> = depths
        .iter()
        .map(|&d| {
            averaged_expectations(
                &device,
                &NoiseConfig::ideal(),
                &floquet_circuit(d),
                &obs,
                &CompileOptions::untwirled(Strategy::Bare, budget.seed),
                &Budget {
                    trajectories: 1,
                    instances: 1,
                    seed: budget.seed,
                },
            )
            .expect("experiment")[0] // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
        })
        .collect();
    fig.push(Series::new("ideal", xs.clone(), ideal));

    for (label, strategy) in [
        ("twirled", Strategy::Bare),
        ("CA-EC", Strategy::CaEc),
        ("CA-DD", Strategy::CaDd),
    ] {
        let ys: Vec<f64> = depths
            .iter()
            .map(|&d| {
                averaged_expectations(
                    &device,
                    &noise,
                    &floquet_circuit(d),
                    &obs,
                    &CompileOptions::new(strategy, budget.seed),
                    budget,
                )
                .expect("experiment")[0] // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
            })
            .collect();
        fig.push(Series::new(label, xs.clone(), ys));
    }
    fig.note("paper (ibm_nazca): twirl-only loses the ±1 pattern; CA-EC/CA-DD recover it");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_correlator_is_clifford_valued() {
        let device = ising_device();
        for d in 0..6 {
            let v = averaged_expectations(
                &device,
                &NoiseConfig::ideal(),
                &floquet_circuit(d),
                &[boundary_observable()],
                &CompileOptions::untwirled(Strategy::Bare, 1),
                &Budget {
                    trajectories: 1,
                    instances: 1,
                    seed: 1,
                },
            )
            .expect("experiment")[0];
            assert!(
                (v.abs() - 1.0).abs() < 1e-9 || v.abs() < 1e-9,
                "Clifford circuit must give ±1/0, got {v} at d={d}"
            );
        }
    }

    #[test]
    fn suppression_recovers_signal_magnitude() {
        let budget = Budget::quick();
        let fig = fig6(&[3], &budget);
        let get = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.last_y())
                .unwrap()
        };
        let ideal = get("ideal");
        if ideal.abs() > 0.5 {
            let twirled = get("twirled");
            let caec = get("CA-EC");
            assert!(
                (caec - ideal).abs() < (twirled - ideal).abs() + 0.05,
                "CA-EC {caec} must track ideal {ideal} at least as well as twirled {twirled}"
            );
        }
    }
}

//! Table I: the error-source × suppression-technique matrix, measured.
//!
//! Each row isolates one error source in a minimal circuit; each
//! column applies one technique; the cell is the residual Ramsey
//! infidelity `1 − F`. The paper's ✓/✗ pattern emerges numerically:
//!
//! | error        | EC | DD (aligned) | DD (staggered) | DD (Walsh) |
//! |--------------|----|--------------|----------------|------------|
//! | Z (idle)     | ✓  | ✓            | ✓              | ✓          |
//! | ZZ (idle)    | ✓  | ✗            | ✓              | ✓          |
//! | ZZ (active)  | ✓  | ✗            | ✗              | ✗          |
//! | Stark Z      | ✓  | ✓            | ✓              | ✓          |
//! | Slow Z       | ✗  | ✓            | ✓              | ✓          |
//! | NNN ZZ       | ✓* | ✗            | ✗              | ✓          |
//!
//! *The paper marks EC ✗ for NNN ZZ; our CA-EC also compensates
//! collision terms because they are part of the crosstalk graph (see
//! EXPERIMENTS.md for the discussion).

use crate::report::{Figure, Series};
use crate::runner::{
    all_zeros_fidelity, all_zeros_fidelity_observables, averaged_expectations_with, Budget,
};
use crate::secondary::collision_device;
use ca_circuit::Circuit;
use ca_core::strategies::{CaDdPass, CaEcPass, StaggeredDdPass, UniformDdPass};
use ca_core::{CaDdConfig, CaEcConfig, PassManager, DEFAULT_DMIN_NS};
use ca_device::{uniform_device, Device, Topology};
use ca_sim::NoiseConfig;

/// Error-source rows of Table I.
pub const ROWS: [&str; 6] = [
    "Z (idle)",
    "ZZ (idle)",
    "ZZ (active)",
    "Stark Z",
    "Slow Z",
    "NNN ZZ",
];

/// Technique columns.
pub const COLS: [&str; 5] = ["none", "EC", "aligned DD", "staggered DD", "Walsh DD"];

fn technique_pipeline(col: &str) -> PassManager {
    let mut pm = PassManager::new();
    match col {
        "none" => {}
        "EC" => {
            pm.push(CaEcPass {
                config: CaEcConfig::default(),
            });
        }
        "aligned DD" => {
            pm.push(UniformDdPass {
                d_min: DEFAULT_DMIN_NS,
            });
        }
        "staggered DD" => {
            pm.push(StaggeredDdPass {
                d_min: DEFAULT_DMIN_NS,
            });
        }
        "Walsh DD" => {
            pm.push(CaDdPass {
                config: CaDdConfig::default(),
            });
        }
        other => panic!("unknown technique {other}"), // ca-lint: allow(panic) -- fail loudly on an unknown technique name from the CLI
    }
    pm
}

struct Row {
    device: Device,
    circuit: Circuit,
    register: Vec<usize>,
    noise: NoiseConfig,
}

fn coherent(noise_extra: NoiseConfig) -> NoiseConfig {
    noise_extra
}

/// Builds the isolation circuit and device for a Table I row.
fn build_row(row: &str, depth: usize, tau: f64) -> Row {
    let base_noise = NoiseConfig {
        decoherence: false,
        readout_error: false,
        charge_parity: false,
        quasistatic: false,
        ..NoiseConfig::default()
    };
    match row {
        "Z (idle)" => {
            // Spectator next to an excited neighbour: the always-on
            // coupling gives a pure Z on the spectator.
            let device = uniform_device(Topology::line(2), 80.0);
            let mut qc = Circuit::new(2, 0);
            qc.x(1).h(0);
            qc.barrier(Vec::<usize>::new());
            for _ in 0..depth {
                qc.delay(tau, 0).delay(tau, 1);
                qc.barrier(Vec::<usize>::new());
            }
            qc.x(1).h(0);
            Row {
                device,
                circuit: qc,
                register: vec![0],
                noise: coherent(base_noise),
            }
        }
        "ZZ (idle)" => {
            let device = uniform_device(Topology::line(2), 80.0);
            let mut qc = Circuit::new(2, 0);
            qc.h(0).h(1);
            qc.barrier(Vec::<usize>::new());
            for _ in 0..depth {
                qc.delay(tau, 0).delay(tau, 1);
                qc.barrier(Vec::<usize>::new());
            }
            qc.h(0).h(1);
            Row {
                device,
                circuit: qc,
                register: vec![0, 1],
                noise: coherent(base_noise),
            }
        }
        "ZZ (active)" => {
            // Case IV: adjacent controls of parallel ECRs.
            let device = uniform_device(Topology::line(4), 80.0);
            let mut qc = Circuit::new(4, 0);
            qc.h(1).h(2);
            qc.barrier(Vec::<usize>::new());
            for _ in 0..(2 * depth) {
                qc.ecr(1, 0).ecr(2, 3);
                qc.barrier(Vec::<usize>::new());
            }
            qc.h(1).h(2);
            let noise = NoiseConfig {
                gate_error: false,
                ..base_noise
            };
            Row {
                device,
                circuit: qc,
                register: vec![1, 2],
                noise,
            }
        }
        "Stark Z" => {
            let mut device = uniform_device(Topology::line(2), 0.0);
            device.calibration.stark_khz.insert((1, 0), 40.0);
            let mut qc = Circuit::new(2, 0);
            qc.h(0);
            qc.barrier(Vec::<usize>::new());
            // Neighbour driven continuously; spectator idles.
            let pulses = ((depth as f64 * tau) / 40.0) as usize & !1usize;
            for _ in 0..pulses {
                qc.x(1);
            }
            qc.barrier(Vec::<usize>::new());
            qc.h(0);
            let noise = NoiseConfig {
                gate_error: false,
                ..base_noise
            };
            Row {
                device,
                circuit: qc,
                register: vec![0],
                noise,
            }
        }
        "Slow Z" => {
            let mut device = uniform_device(Topology::line(1), 0.0);
            device.calibration.qubits[0].charge_parity_khz = 40.0;
            let mut qc = Circuit::new(1, 0);
            qc.h(0);
            qc.barrier(Vec::<usize>::new());
            for _ in 0..depth {
                qc.delay(tau, 0);
                qc.barrier(Vec::<usize>::new());
            }
            qc.h(0);
            let noise = NoiseConfig {
                charge_parity: true,
                ..base_noise
            };
            Row {
                device,
                circuit: qc,
                register: vec![0],
                noise,
            }
        }
        "NNN ZZ" => {
            let device = collision_device(0.0, 15.0);
            let mut qc = Circuit::new(3, 0);
            qc.h(0).h(2);
            qc.barrier(Vec::<usize>::new());
            for _ in 0..depth {
                qc.delay(tau, 0).delay(tau, 1).delay(tau, 2);
                qc.barrier(Vec::<usize>::new());
            }
            qc.h(0).h(2);
            Row {
                device,
                circuit: qc,
                register: vec![0, 2],
                noise: coherent(base_noise),
            }
        }
        other => panic!("unknown row {other}"), // ca-lint: allow(panic) -- fail loudly on an unknown row name from the CLI
    }
}

/// Measures the Table I residual matrix. Returns the figure (xs = row
/// index, one series per technique) whose cells are `1 − F`.
pub fn table1(budget: &Budget) -> Figure {
    let depth = 8;
    let tau = 1000.0;
    let xs: Vec<f64> = (0..ROWS.len()).map(|i| i as f64).collect();
    let mut fig = Figure::new(
        "table1",
        "residual infidelity per error source x technique",
        "row",
        "1 - F",
    );
    for col in COLS {
        let ys: Vec<f64> = ROWS
            .iter()
            .map(|row| {
                let r = build_row(row, depth, tau);
                let obs = all_zeros_fidelity_observables(r.circuit.num_qubits, &r.register);
                let vals = averaged_expectations_with(
                    &r.device,
                    &r.noise,
                    &r.circuit,
                    &obs,
                    |_| technique_pipeline(col),
                    budget,
                );
                1.0 - all_zeros_fidelity(&vals.expect("experiment")) // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
            })
            .collect();
        fig.push(Series::new(col, xs.clone(), ys));
    }
    for (i, row) in ROWS.iter().enumerate() {
        fig.note(format!("row {i} = {row}"));
    }
    fig.note("paper Table I: EC ✓ for rows 0-3 (✗ slow Z); DD needs staggered for ZZ idle, Walsh for NNN, and cannot fix ZZ active");
    fig
}

/// True when a residual is "suppressed" at the Table I threshold.
pub fn suppressed(residual: f64) -> bool {
    residual < 0.08
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(fig: &Figure, row: usize, col: &str) -> f64 {
        fig.series.iter().find(|s| s.label == col).unwrap().ys[row]
    }

    #[test]
    fn table_matches_paper_checkmarks() {
        let fig = table1(&Budget {
            trajectories: 24,
            instances: 2,
            seed: 3,
        });
        // Row 1: ZZ (idle): aligned fails, staggered & Walsh & EC work.
        assert!(
            suppressed(cell(&fig, 1, "EC")),
            "EC on ZZ idle: {}",
            cell(&fig, 1, "EC")
        );
        assert!(suppressed(cell(&fig, 1, "staggered DD")));
        assert!(
            !suppressed(cell(&fig, 1, "aligned DD")),
            "aligned must fail ZZ idle"
        );
        // Row 2: ZZ (active): only EC.
        assert!(
            suppressed(cell(&fig, 2, "EC")),
            "EC on case IV: {}",
            cell(&fig, 2, "EC")
        );
        assert!(
            !suppressed(cell(&fig, 2, "Walsh DD")),
            "DD cannot fix case IV"
        );
        // Row 4: slow Z: EC fails, DD works.
        assert!(!suppressed(cell(&fig, 4, "EC")), "EC cannot fix slow Z");
        assert!(suppressed(cell(&fig, 4, "Walsh DD")));
        // Row 5: NNN ZZ: Walsh works, staggered does not.
        assert!(suppressed(cell(&fig, 5, "Walsh DD")));
        assert!(
            !suppressed(cell(&fig, 5, "staggered DD")),
            "staggered must miss NNN"
        );
        // "none" column: every row shows a real error.
        for row in 0..ROWS.len() {
            assert!(
                !suppressed(cell(&fig, row, "none")),
                "row {row} shows no error without suppression: {}",
                cell(&fig, row, "none")
            );
        }
    }
}

//! PEC experiments (Secs. V-B/C): the mitigation consequence of
//! Fig. 8.
//!
//! Two drivers:
//!
//! * [`fig_pec_gamma`] — learns the per-layer Pauli channel of the
//!   sparse 10-qubit Fig. 8a layer under each strategy (bare →
//!   DD → CA-DD → CA-EC), inverts it, and reports the *learned* PEC
//!   overhead base γ next to the closed-form `γ = LF^{−2}`. The
//!   paper's trajectory is γ 2.38 → 1.81 → 1.48 → 1.29: context-aware
//!   compiling makes the residual twirled noise cheap to cancel.
//! * [`pec_demo`] / [`pec_demo_127`] — runs the full learn → invert →
//!   sample → mitigate pipeline on one observable and shows the
//!   mitigated estimate landing on the ideal value while the raw one
//!   decays, at equal shots. At 127 qubits the executor runs on the
//!   bit-parallel frame-batch engine against a single cached
//!   execution plan for every sampled PEC instance.

use crate::layer_fidelity::{fig8_device, partitions as fig8_partitions, LAYER_GATES};
use crate::report::{Figure, Series};
use crate::runner::Budget;
use ca_circuit::{Pauli, PauliString};
use ca_core::{compile, CompileOptions, Strategy};
use ca_device::Device;
use ca_mitigation::{
    invert, invert_clamped, layer_anchor_items, layer_circuit, learn_layer_channel, mitigate_pauli,
    propagate_through_layers, LearnConfig, MitigationError, PecConfig, MIN_INVERTIBLE_FIDELITY,
};
use ca_sim::{Engine, NoiseConfig, Session, Simulator};

/// Learned-γ result for one strategy.
#[derive(Clone, Debug)]
pub struct PecGammaResult {
    /// Strategy label.
    pub label: String,
    /// Engine the learning circuits ran on.
    pub engine: String,
    /// Layer fidelity implied by the learned channel.
    pub lf: f64,
    /// γ from the quasi-probability inverse (exact Σ|q| accounting).
    pub gamma_learned: f64,
    /// Closed-form γ = LF^{−2} from the same learned LF.
    pub gamma_formula: f64,
    /// False when some learned fidelity sat below the invertibility
    /// floor and `gamma_learned` is the clamped *lower bound* (bare
    /// compilation at strong crosstalk lands here).
    pub invertible: bool,
}

fn learn_config(depths: &[usize], budget: &Budget) -> LearnConfig {
    LearnConfig {
        depths: depths.to_vec(),
        shots: budget.trajectories,
        instances: budget.instances,
        seed: budget.seed,
        noise: NoiseConfig {
            readout_error: false,
            ..NoiseConfig::default()
        },
    }
}

/// Learns the layer channel and γ for one strategy on the Fig. 8
/// layer.
pub fn learn_gamma(
    device: &Device,
    strategy: Strategy,
    depths: &[usize],
    budget: &Budget,
) -> Result<PecGammaResult, MitigationError> {
    let parts = fig8_partitions();
    let learned = learn_layer_channel(
        device,
        strategy,
        &LAYER_GATES,
        &parts,
        &learn_config(depths, budget),
    )?;
    // Strategies whose channel is too deep to invert (bare at strong
    // crosstalk) still get a γ *lower bound* via the clamped inverse.
    let (quasi, invertible) = match invert(&learned.channel) {
        Ok(q) => (q, true),
        Err(MitigationError::DegenerateFidelity { .. }) => (
            invert_clamped(&learned.channel, MIN_INVERTIBLE_FIDELITY),
            false,
        ),
        Err(e) => return Err(e),
    };
    Ok(PecGammaResult {
        label: strategy.label().to_string(),
        engine: learned.engine.clone(),
        lf: learned.lf,
        gamma_learned: quasi.gamma,
        gamma_formula: ca_metrics::gamma_from_layer_fidelity(learned.lf.max(1e-6))?,
        invertible,
    })
}

/// The Fig. 8 γ trajectory with *learned* channels, over the four
/// paper strategies plus the Sec. V-E combined one. Clifford
/// strategies learn on the frame-batch engine; CA-EC's non-Clifford
/// compensations resolve to the dense engine at 10 qubits.
///
/// Strategies are listed in the paper's order (paper trajectory:
/// γ 2.38 → 1.81 → 1.48 → 1.29 along bare → DD → CA-DD → CA-EC).
/// This reproduction's robust facts: bare ≫ DD > both context-aware
/// strategies by wide margins, CA-DD and CA-EC land within a few
/// percent of each other (which of the two edges ahead depends on
/// the twirl/shot budget), and the combined CA-EC+DD is the best
/// point at benchmark budgets (Sec. V-E). Earlier revisions had
/// CA-EC clearly stuck *between* DD and CA-DD because twirl Paulis
/// were charged as real 40 ns pulses with their own depolarizing
/// error — costs hardware does not pay (it merges them into the
/// neighbouring 1q layers). With merged twirl gates
/// (`ca-core::twirl`) that artificial burden is gone and CA-EC
/// closed the gap to statistical parity with CA-DD.
pub fn fig_pec_gamma(
    depths: &[usize],
    budget: &Budget,
) -> Result<(Figure, Vec<PecGammaResult>), MitigationError> {
    let device = fig8_device(37);
    let strategies = [
        Strategy::Bare,
        Strategy::UniformDd,
        Strategy::CaDd,
        Strategy::CaEc,
        Strategy::CaEcPlusDd,
    ];
    let mut results = Vec::with_capacity(strategies.len());
    for &s in &strategies {
        results.push(learn_gamma(&device, s, depths, budget)?);
    }
    let xs: Vec<f64> = (0..results.len()).map(|i| i as f64).collect();
    let mut fig = Figure::new(
        "fig_pec_gamma",
        "learned PEC overhead base γ of the sparse 10-qubit layer",
        "strategy",
        "gamma",
    );
    fig.push(Series::new(
        "gamma (learned channel)",
        xs.clone(),
        results.iter().map(|r| r.gamma_learned).collect(),
    ));
    fig.push(Series::new(
        "gamma = LF^-2",
        xs,
        results.iter().map(|r| r.gamma_formula).collect(),
    ));
    for (i, r) in results.iter().enumerate() {
        fig.note(format!(
            "strategy {i} = {} [{} engine] LF {:.3}",
            r.label, r.engine, r.lf
        ));
    }
    fig.note("paper: γ 2.38 (bare) → 1.81 (DD) → 1.48 (CA-DD) → 1.29 (CA-EC)");
    fig.note("this reproduction: CA-DD and CA-EC at parity; CA-EC+DD best at bench budgets");
    Ok((fig, results))
}

/// One PEC mitigation demonstration: learned channel, inverted and
/// sampled, against the paired unmitigated estimate.
#[derive(Clone, Debug)]
pub struct PecDemoResult {
    /// Strategy label.
    pub label: String,
    /// Full-layer γ of the learned channel (all partitions).
    pub gamma_layer: f64,
    /// γ actually paid: the observable-support restriction raised to
    /// the number of mitigated layer applications.
    pub gamma_total: f64,
    /// Mitigated layer applications.
    pub depth: usize,
    /// Unmitigated estimate and its standard error.
    pub raw: f64,
    /// Standard error of `raw`.
    pub raw_err: f64,
    /// PEC estimate and its (γ-amplified) standard error.
    pub mitigated: f64,
    /// Standard error of `mitigated`.
    pub mitigated_err: f64,
    /// The noiseless value of the observable (+1 by construction).
    pub ideal: f64,
    /// Shots used by both estimates.
    pub shots: usize,
}

/// How to run a [`pec_demo`]: strategy, circuit depth, learning
/// depths, and the shot budget shared by both estimates.
#[derive(Clone, Debug)]
pub struct PecDemoSpec<'a> {
    /// Compile strategy (must stay Clifford — the executor runs on
    /// the frame engines).
    pub strategy: Strategy,
    /// Mitigated layer applications in the demo circuit.
    pub depth: usize,
    /// Depths the learner fits its decays over.
    pub learn_depths: &'a [usize],
    /// Shots for the mitigated and the paired raw estimate.
    pub shots: usize,
}

/// Runs the full pipeline on one device/layer: learns the channel
/// under the spec's strategy, prepares the first gate pair in an
/// X⊗X eigenstate, applies `depth` layers, and mitigates the
/// propagated pair observable with the support-restricted inverse.
pub fn pec_demo(
    device: &Device,
    layer: &[(usize, usize)],
    parts: &[Vec<usize>],
    spec: &PecDemoSpec<'_>,
    budget: &Budget,
) -> Result<PecDemoResult, MitigationError> {
    let n = device.topology.num_qubits;
    let (strategy, depth, shots) = (spec.strategy, spec.depth, spec.shots);
    let learned = learn_layer_channel(
        device,
        strategy,
        layer,
        parts,
        &learn_config(spec.learn_depths, budget),
    )?;
    let quasi = invert(&learned.channel)?;

    // X⊗X on the first gate pair: maximally sensitive to the twirled
    // Z/ZZ channel, so the raw estimate decays visibly and the
    // mitigated-vs-raw comparison has real signal.
    let (a, b) = layer[0];
    let preps = [(a, Pauli::X), (b, Pauli::X)];
    let mut prep = PauliString::identity(n);
    prep.paulis[a] = Pauli::X;
    prep.paulis[b] = Pauli::X;
    let observable = propagate_through_layers(&prep, layer, depth);
    let qc = layer_circuit(n, &preps, layer, depth);
    let sc = compile(
        &qc,
        device,
        &CompileOptions::new(strategy, budget.seed.wrapping_add(101)),
    )
    .expect("compile"); // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
    let anchors = layer_anchor_items(&sc, layer.len())?;
    let restricted = quasi.restrict_to_support(&[a, b]);

    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let session = Session::new(Simulator::with_engine(
        device.clone(),
        noise,
        Engine::FrameBatch,
    ));
    let run = mitigate_pauli(
        &session,
        &sc,
        &anchors,
        &restricted,
        &observable,
        &PecConfig {
            shots,
            seed: budget.seed ^ 0xD301,
            workers: None,
        },
    )?;
    Ok(PecDemoResult {
        label: strategy.label().to_string(),
        gamma_layer: quasi.gamma,
        gamma_total: run.gamma_total,
        depth,
        raw: run.raw,
        raw_err: run.raw_std_err,
        mitigated: run.mitigated.value,
        mitigated_err: run.mitigated.std_err,
        ideal: 1.0,
        shots,
    })
}

/// [`pec_demo`] at full device scale: the 127-qubit heavy-hex sparse
/// layer under CA-DD, every sampled PEC instance executed against
/// one cached frame-batch plan.
pub fn pec_demo_127(
    depth: usize,
    learn_depths: &[usize],
    budget: &Budget,
    shots: usize,
) -> Result<PecDemoResult, MitigationError> {
    let device = crate::large_scale::eagle_device(127);
    let layer = crate::large_scale::sparse_device_layer(&device.topology);
    let parts = crate::large_scale::partitions(&device.topology, &layer);
    pec_demo(
        &device,
        &layer,
        &parts,
        &PecDemoSpec {
            strategy: Strategy::CaDd,
            depth,
            learn_depths,
            shots,
        },
        budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learned_gamma_tracks_formula_for_clifford_strategies() {
        // One cheap strategy end-to-end: the learned γ must be > 1,
        // finite, and within a loose band of LF^{-2} (they measure
        // the same noise through different estimators).
        let budget = Budget {
            trajectories: 128,
            instances: 1,
            seed: 19,
        };
        let device = fig8_device(37);
        let r = learn_gamma(&device, Strategy::CaDd, &[1, 2, 4], &budget).unwrap();
        assert_eq!(r.engine, "frame-batch");
        assert!(r.gamma_learned > 1.0, "γ {}", r.gamma_learned);
        assert!(r.lf > 0.0 && r.lf < 1.0, "LF {}", r.lf);
        let excess_ratio = (r.gamma_learned - 1.0) / (r.gamma_formula - 1.0);
        assert!(
            (0.3..3.0).contains(&excess_ratio),
            "learned γ {} vs formula {}",
            r.gamma_learned,
            r.gamma_formula
        );
    }

    #[test]
    fn pec_demo_beats_raw_on_the_fig8_layer() {
        let budget = Budget {
            trajectories: 256,
            instances: 1,
            seed: 5,
        };
        let device = fig8_device(37);
        let parts = fig8_partitions();
        let demo = pec_demo(
            &device,
            &LAYER_GATES,
            &parts,
            &PecDemoSpec {
                strategy: Strategy::CaDd,
                depth: 4,
                learn_depths: &[1, 2, 4],
                shots: 4096,
            },
            &budget,
        )
        .unwrap();
        assert!(
            (demo.mitigated - demo.ideal).abs() < (demo.raw - demo.ideal).abs(),
            "mitigated {} ± {} must beat raw {} ± {}",
            demo.mitigated,
            demo.mitigated_err,
            demo.raw,
            demo.raw_err
        );
        assert!(demo.gamma_total >= 1.0);
        assert!(demo.gamma_layer >= demo.gamma_total.powf(1.0 / demo.depth as f64) - 1e-9);
    }
}

//! Result containers and text rendering for figure/table
//! reproductions. `cargo bench` prints these as aligned tables, one
//! per paper figure.

/// One curve of a figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (matches the paper's legend where possible).
    pub label: String,
    /// X values.
    pub xs: Vec<f64>,
    /// Y values.
    pub ys: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ys.len());
        Self {
            label: label.into(),
            xs,
            ys,
        }
    }

    /// The final y value (often the headline number).
    pub fn last_y(&self) -> f64 {
        *self.ys.last().expect("non-empty series") // ca-lint: allow(panic) -- series are built non-empty by every experiment
    }

    /// Mean of y values.
    pub fn mean_y(&self) -> f64 {
        self.ys.iter().sum::<f64>() / self.ys.len() as f64
    }
}

/// A reproduced figure: several series over a common x grid, plus
/// free-form notes (paper-vs-measured summaries).
#[derive(Clone, Debug, PartialEq)]
pub struct Figure {
    /// Identifier, e.g. `"fig3c"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Paper-vs-measured commentary emitted with the table.
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, xlabel: &str, ylabel: &str) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push(&mut self, series: Series) -> &mut Self {
        if let Some(first) = self.series.first() {
            assert_eq!(first.xs, series.xs, "series must share an x grid");
        }
        self.series.push(series);
        self
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Renders the figure as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        if self.series.is_empty() {
            return out;
        }
        let mut header = format!("{:>10}", self.xlabel);
        for s in &self.series {
            header.push_str(&format!("  {:>16}", truncate(&s.label, 16)));
        }
        out.push_str(&header);
        out.push('\n');
        let xs = &self.series[0].xs;
        for (i, x) in xs.iter().enumerate() {
            let mut row = format!("{x:>10.3}");
            for s in &self.series {
                row.push_str(&format!("  {:>16.4}", s.ys[i]));
            }
            out.push_str(&row);
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n - 1).collect::<String>() + "…"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_series() {
        let mut f = Figure::new("figX", "demo", "d", "F");
        f.push(Series::new("bare", vec![0.0, 1.0], vec![1.0, 0.5]));
        f.push(Series::new("CA-EC", vec![0.0, 1.0], vec![1.0, 0.9]));
        f.note("paper: CA-EC wins");
        let r = f.render();
        assert!(r.contains("bare"));
        assert!(r.contains("CA-EC"));
        assert!(r.contains("0.9000"));
        assert!(r.contains("note: paper"));
    }

    #[test]
    #[should_panic(expected = "share an x grid")]
    fn mismatched_grids_rejected() {
        let mut f = Figure::new("f", "t", "x", "y");
        f.push(Series::new("a", vec![0.0], vec![1.0]));
        f.push(Series::new("b", vec![1.0], vec![1.0]));
    }

    #[test]
    fn series_helpers() {
        let s = Series::new("s", vec![0.0, 1.0, 2.0], vec![1.0, 0.8, 0.6]);
        assert_eq!(s.last_y(), 0.6);
        assert!((s.mean_y() - 0.8).abs() < 1e-12);
    }
}

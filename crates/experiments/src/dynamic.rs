//! Fig. 9: error compensation for dynamic circuits.
//!
//! A Bell state is prepared on the data pair (1,2) of a 3-qubit chain
//! by measuring the auxiliary qubit 0 of a GHZ state in the X basis
//! and feeding the outcome forward. During the (long) measurement plus
//! feed-forward window the idle data pair accrues `U11` and the
//! aux–data edge leaves an outcome-conditioned phase. CA-EC appends
//! the Fig. 9b compensation block: unconditional `Rz⊗Rz·Rzz` for the
//! idle pair and a conditional extra `Rz` for the measured edge.
//! Sweeping the assumed window length τ calibrates the feed-forward
//! latency: fidelity peaks where the estimate matches the truth.

use crate::report::{Figure, Series};
use crate::runner::{all_zeros_fidelity, all_zeros_fidelity_observables, Budget};
use ca_circuit::{Circuit, Gate};
use ca_core::append_measure_compensation;
use ca_device::{uniform_device, Device, Topology};
use ca_sim::{NoiseConfig, Simulator};

/// The dynamic-Bell device: 3-qubit chain, aux = 0, data = (1, 2).
/// The ZZ rate is at the strong end of the fixed-frequency range so
/// the ~5 µs window accrues a phase near π, as in the paper's
/// experiment (bare fidelity 9.5%).
pub fn dynamic_device() -> Device {
    uniform_device(Topology::line(3), 70.0)
}

/// Builds the dynamic Bell-preparation circuit with an optional CA-EC
/// compensation block assuming a total idle window of `tau_est_ns`
/// (0 disables compensation).
pub fn bell_circuit(device: &Device, tau_est_ns: f64) -> Circuit {
    let mut qc = Circuit::new(3, 1);
    // GHZ(0,1,2).
    qc.h(0);
    qc.cx(0, 1);
    qc.cx(1, 2);
    // Measure the aux in the X basis.
    qc.h(0);
    qc.measure(0, 0);
    // Feed-forward correction: Z on data qubit 1 when the outcome is 1.
    qc.gate_if(Gate::Z, [1], 0, true);
    if tau_est_ns > 0.0 {
        append_measure_compensation(&mut qc, device, 0, 0, &[1, 2], tau_est_ns);
    }
    // Disentangle: Bell(1,2) → |00⟩, so P(00) is the Bell fidelity.
    qc.barrier(vec![1, 2]);
    qc.cx(1, 2);
    qc.h(1);
    qc
}

/// The true idle window: measurement plus feed-forward latency.
pub fn true_tau_ns(device: &Device) -> f64 {
    device.durations().measure + device.durations().feedforward
}

/// Measures Bell fidelity for a given τ estimate.
pub fn bell_fidelity(device: &Device, tau_est_ns: f64, budget: &Budget) -> f64 {
    let noise = NoiseConfig {
        readout_error: false,
        ..NoiseConfig::default()
    };
    let sim = Simulator::with_config(device.clone(), noise);
    let qc = bell_circuit(device, tau_est_ns);
    let sc = ca_circuit::schedule_asap(&qc, device.durations());
    let obs = all_zeros_fidelity_observables(3, &[1, 2]);
    let vals = sim
        .expect_paulis(
            &sc,
            &obs,
            budget.trajectories * budget.instances,
            budget.seed,
        )
        .expect("simulate"); // ca-lint: allow(panic) -- workload built in this module is engine-valid by construction
    all_zeros_fidelity(&vals)
}

/// Runs the Fig. 9c sweep of the τ estimate.
pub fn fig9(taus_ns: &[f64], budget: &Budget) -> Figure {
    let device = dynamic_device();
    let xs: Vec<f64> = taus_ns.iter().map(|t| t / 1000.0).collect();
    let bare = bell_fidelity(&device, 0.0, budget);
    let ys: Vec<f64> = taus_ns
        .iter()
        .map(|&t| bell_fidelity(&device, t, budget))
        .collect();
    let mut fig = Figure::new(
        "fig9c",
        "dynamic Bell fidelity vs assumed idle time",
        "tau (us)",
        "Bell fidelity F",
    );
    fig.push(Series::new("CA-EC", xs.clone(), ys));
    fig.push(Series::new(
        "no compensation",
        xs.clone(),
        vec![bare; xs.len()],
    ));
    fig.note(format!(
        "true window = {:.2} us (measurement {:.1} + feed-forward {:.2})",
        true_tau_ns(&device) / 1000.0,
        device.durations().measure / 1000.0,
        device.durations().feedforward / 1000.0
    ));
    fig.note("paper (ibm_nazca): 9.5% bare → 78.1% compensated (>8×) at the optimal τ");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_protocol_prepares_bell() {
        let device = uniform_device(Topology::line(3), 0.0);
        let sim = Simulator::with_config(device.clone(), NoiseConfig::ideal());
        let qc = bell_circuit(&device, 0.0);
        let sc = ca_circuit::schedule_asap(&qc, device.durations());
        let obs = all_zeros_fidelity_observables(3, &[1, 2]);
        let vals = sim.expect_paulis(&sc, &obs, 40, 3).expect("simulate");
        let f = all_zeros_fidelity(&vals);
        assert!((f - 1.0).abs() < 1e-9, "ideal Bell fidelity {f}");
    }

    #[test]
    fn compensation_at_true_tau_recovers_fidelity() {
        let device = dynamic_device();
        let budget = Budget::quick();
        let bare = bell_fidelity(&device, 0.0, &budget);
        let comp = bell_fidelity(&device, true_tau_ns(&device), &budget);
        assert!(
            comp > bare + 0.3,
            "compensated {comp} must far exceed bare {bare}"
        );
    }

    #[test]
    fn frame_engines_reproduce_the_fig9_sweep() {
        // The same protocol forced onto the stabilizer engine: the
        // conditional Z runs as exact feed-forward and the conditional
        // Rz compensation folds into the coherent banks, so the twirled
        // model must show the same structure as the dense engine —
        // fidelity far above bare at the true τ, peaking there.
        use ca_sim::Engine;
        let device = dynamic_device();
        let noise = NoiseConfig {
            readout_error: false,
            ..NoiseConfig::default()
        };
        let sim = Simulator::with_engine(device.clone(), noise, Engine::Stabilizer);
        let truth = true_tau_ns(&device);
        let obs = all_zeros_fidelity_observables(3, &[1, 2]);
        let fid = |tau: f64| {
            let qc = bell_circuit(&device, tau);
            let sc = ca_circuit::schedule_asap(&qc, device.durations());
            all_zeros_fidelity(&sim.expect_paulis(&sc, &obs, 400, 11).expect("simulate"))
        };
        let fs: Vec<f64> = [0.0, 0.4, 0.7, 1.0, 1.3]
            .iter()
            .map(|f| fid(f * truth))
            .collect();
        assert!(
            fs[3] > fs[0] + 0.3,
            "compensated {} must far exceed bare {}",
            fs[3],
            fs[0]
        );
        let best = fs[1..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2, "fidelity must peak at the true τ: {fs:?}");
    }

    #[test]
    fn sweep_peaks_near_true_tau() {
        let device = dynamic_device();
        let budget = Budget::quick();
        let truth = true_tau_ns(&device);
        let taus = [0.4 * truth, 0.7 * truth, truth, 1.3 * truth, 1.6 * truth];
        let fs: Vec<f64> = taus
            .iter()
            .map(|&t| bell_fidelity(&device, t, &budget))
            .collect();
        let best = fs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2, "fidelity must peak at the true τ: {fs:?}");
    }
}

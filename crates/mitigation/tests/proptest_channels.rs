//! Property tests for the mitigation pipeline's algebra:
//!
//! * every channel built from fitted fidelities — the constructor the
//!   learner uses, including on noisy/inconsistent fits — is a valid
//!   Pauli distribution;
//! * the quasi-probability inverse always has γ ≥ 1, composes with
//!   the channel to the identity exactly, and *resampling* it (the
//!   Monte-Carlo step PEC actually performs) round-trips back to the
//!   identity within statistical tolerance.

use ca_mitigation::channel::{product_index, PartitionChannel};
use ca_mitigation::{invert, LayerChannel, MitigationError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fitted-fidelity vectors as the learner produces them: mostly near
/// 1, sometimes deep, occasionally inconsistent (the transform then
/// yields small negatives the projection must clean up).
fn arb_fidelities(k: usize) -> impl Strategy<Value = Vec<f64>> {
    let len = 1usize << (2 * k);
    proptest::collection::vec(0.3f64..1.0, len..len + 1)
}

fn channel_from(k: usize, fids: &[f64]) -> PartitionChannel {
    let qubits: Vec<usize> = (0..k).collect();
    PartitionChannel::from_fidelities(qubits, fids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn learned_channels_are_valid_distributions(
        f1 in arb_fidelities(1),
        f2 in arb_fidelities(2),
    ) {
        for ch in [channel_from(1, &f1), channel_from(2, &f2)] {
            let total: f64 = ch.probs.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sums to 1: {total}");
            prop_assert!(ch.probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // Cleaned fidelities of a valid distribution stay in [−1, 1]
            // with f_I = 1.
            let fids = ch.fidelities();
            prop_assert!((fids[0] - 1.0).abs() < 1e-9);
            prop_assert!(fids.iter().all(|f| (-1.0..=1.0 + 1e-12).contains(f)));
        }
    }

    #[test]
    fn inverse_has_gamma_at_least_one_and_cancels_exactly(
        f1 in arb_fidelities(1),
        f2 in arb_fidelities(2),
    ) {
        let layer = LayerChannel {
            partitions: vec![channel_from(1, &f1), {
                let mut c = channel_from(2, &f2);
                c.qubits = vec![1, 2];
                c
            }],
        };
        let quasi = match invert(&layer) {
            Ok(q) => q,
            // Very deep random channels can dip below the
            // invertibility floor; the typed refusal is the contract.
            Err(MitigationError::DegenerateFidelity { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        };
        prop_assert!(quasi.gamma >= 1.0 - 1e-12, "γ {} < 1", quasi.gamma);
        let mut product = 1.0;
        for (part, qp) in layer.partitions.iter().zip(quasi.partitions.iter()) {
            prop_assert!(qp.gamma >= 1.0 - 1e-12);
            prop_assert!((qp.quasi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            product *= qp.gamma;
            // Signed XOR-convolution of inverse and channel = identity.
            let k = part.width();
            let mut composed = vec![0.0; part.probs.len()];
            for (a, &qa) in qp.quasi.iter().enumerate() {
                for (b, &pb) in part.probs.iter().enumerate() {
                    composed[product_index(a, b, k)] += qa * pb;
                }
            }
            prop_assert!((composed[0] - 1.0).abs() < 1e-9, "identity mass {}", composed[0]);
            for &c in &composed[1..] {
                prop_assert!(c.abs() < 1e-9, "residual error mass {c}");
            }
        }
        prop_assert!((quasi.gamma - product).abs() < 1e-9, "γ multiplies over partitions");
    }

    #[test]
    fn resampled_inverse_round_trips_statistically(
        f in arb_fidelities(1),
        seed in 0u64..1000,
    ) {
        let ch = channel_from(1, &f);
        let layer = LayerChannel { partitions: vec![ch.clone()] };
        let quasi = match invert(&layer) {
            Ok(q) => q,
            Err(_) => return Ok(()),
        };
        let qp = &quasi.partitions[0];
        // Monte-Carlo estimate of the signed inverse distribution, as
        // the PEC executor samples it.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20_000usize;
        let mut signed_counts = [0i64; 4];
        for _ in 0..n {
            let (idx, sign) = qp.sample(&mut rng);
            signed_counts[idx] += sign as i64;
        }
        let q_hat: Vec<f64> = signed_counts
            .iter()
            .map(|&c| qp.gamma * c as f64 / n as f64)
            .collect();
        // Compose the *resampled* inverse with the channel: the
        // result must be the identity within sampling tolerance.
        let mut composed = [0.0; 4];
        for (a, &qa) in q_hat.iter().enumerate() {
            for (b, &pb) in ch.probs.iter().enumerate() {
                composed[product_index(a, b, 1)] += qa * pb;
            }
        }
        let tol = 5.0 * qp.gamma / (n as f64).sqrt() + 1e-9;
        prop_assert!(
            (composed[0] - 1.0).abs() < tol,
            "identity mass {} (tol {tol})",
            composed[0]
        );
        for &c in &composed[1..] {
            prop_assert!(c.abs() < tol, "residual {c} (tol {tol})");
        }
    }
}

//! The PEC executor: sign-weighted sampling of the inverse channel.
//!
//! For each shot, one element of the quasi-probability inverse is
//! drawn per (layer application × partition); its Paulis become
//! per-shot frame insertions ([`ca_sim::insert`]) anchored at the
//! layer's last two-qubit gate item, and the product of the drawn
//! signs weights the shot's measured eigenvalue. The estimator
//! `γ_total · mean(sign · outcome)` is unbiased for the noiseless
//! expectation of everything the learned channel accounts for, with
//! standard error `γ_total · σ/√N` — the sampling-overhead cost made
//! explicit (Sec. V-B).
//!
//! **One compiled plan serves every sampled instance**: the executor
//! compiles through the session's plan cache
//! ([`ca_sim::Session::compiled`] → [`ca_sim::CompiledCircuit`]) and
//! replays the artifact for the mitigated and the unmitigated
//! (paired, same noise streams) estimate, so thousands of PEC
//! instances cost thousands of frame batches, not thousands of
//! compilations — and repeated runs over the same circuit reuse the
//! cached plan outright.

use crate::error::MitigationError;
use crate::invert::QuasiChannel;
use ca_circuit::{PauliString, ScheduledCircuit};
use ca_metrics::{mean, mitigated_estimate, std_err, MitigatedEstimate};
use ca_sim::{InsertionSet, PauliInsertion, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Budget and seeding of one PEC run.
#[derive(Clone, Copy, Debug)]
pub struct PecConfig {
    /// Shots (= sampled inverse-channel instances).
    pub shots: usize,
    /// Seed for both the noise streams and the quasi-probability
    /// sampling.
    pub seed: u64,
    /// Worker-thread override (`None` = `CA_SIM_WORKERS` / host).
    pub workers: Option<usize>,
}

/// The result of one PEC run, with the paired unmitigated estimate.
#[derive(Clone, Debug)]
pub struct PecRun {
    /// Sign-weighted, γ-rescaled estimate and its standard error.
    pub mitigated: MitigatedEstimate,
    /// Unmitigated estimate over the same shots and noise streams.
    pub raw: f64,
    /// Standard error of [`Self::raw`].
    pub raw_std_err: f64,
    /// `γ_layer^anchors` — the total sampling-overhead factor.
    pub gamma_total: f64,
    /// Fraction of shots that drew an odd number of negative
    /// quasi-probability elements (approaches 1/2 as γ_total grows —
    /// the signal-cancellation mechanism behind the overhead).
    pub negative_fraction: f64,
    /// Total Pauli insertions scheduled across all shots.
    pub insertions: usize,
}

/// Finds the per-layer insertion anchor items of a compiled circuit:
/// the two-qubit unitary items in schedule order, chunked into layer
/// applications of `gates_per_layer` gates; each chunk's last item is
/// the anchor "immediately after this layer application". Fails when
/// the two-qubit gate count is not a multiple of the layer size
/// (e.g. a strategy that adds two-qubit compensation gates).
pub fn layer_anchor_items(
    sc: &ScheduledCircuit,
    gates_per_layer: usize,
) -> Result<Vec<usize>, MitigationError> {
    let mut items: Vec<(f64, usize)> = sc
        .items
        .iter()
        .enumerate()
        .filter(|(_, si)| si.instruction.gate.is_unitary() && si.instruction.qubits.len() == 2)
        .map(|(i, si)| (si.t1(), i))
        .collect();
    if gates_per_layer == 0 || !items.len().is_multiple_of(gates_per_layer) {
        return Err(MitigationError::AnchorMismatch {
            two_qubit_items: items.len(),
            gates_per_layer,
        });
    }
    items.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    Ok(items
        .chunks(gates_per_layer)
        .map(|chunk| chunk.last().expect("non-empty chunk").1) // ca-lint: allow(panic) -- chunks() yields non-empty chunks
        .collect())
}

/// Runs PEC for one Pauli observable on a compiled circuit whose
/// layer applications are anchored at `anchors`: samples the inverse
/// channel per shot, executes every instance against one cached
/// plan (compiled through the session's LRU plan cache), and returns
/// the mitigated and paired raw estimates.
pub fn mitigate_pauli(
    session: &Session,
    sc: &ScheduledCircuit,
    anchors: &[usize],
    quasi: &QuasiChannel,
    observable: &PauliString,
    config: &PecConfig,
) -> Result<PecRun, MitigationError> {
    if config.shots == 0 {
        return Err(MitigationError::NoShots);
    }
    let prepared = session.compiled(sc, config.seed)?;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9EC0_11EC_5A3B_0001);
    let mut signs = vec![1i8; config.shots];
    let mut list: Vec<PauliInsertion> = Vec::new();
    for (shot, sign) in signs.iter_mut().enumerate() {
        for &item in anchors {
            for part in &quasi.partitions {
                let (idx, s) = part.sample(&mut rng);
                if s < 0 {
                    *sign = -*sign;
                }
                for (qubit, pauli) in part.index_paulis(idx) {
                    list.push(PauliInsertion {
                        shot,
                        item,
                        qubit,
                        pauli,
                    });
                }
            }
        }
    }
    let ins = prepared.insertions(&list)?;
    let obs = std::slice::from_ref(observable);
    let flips = prepared.expect_flips(obs, config.shots, &ins, config.workers)?;
    let raw_flips =
        prepared.expect_flips(obs, config.shots, &InsertionSet::empty(), config.workers)?;

    let gamma_total = quasi.gamma.powi(anchors.len() as i32);
    let signed: Vec<f64> = signs
        .iter()
        .enumerate()
        .map(|(i, &s)| s as f64 * flips.value(0, i))
        .collect();
    let raw_vals: Vec<f64> = (0..config.shots).map(|i| raw_flips.value(0, i)).collect();
    let negative = signs.iter().filter(|&&s| s < 0).count();
    Ok(PecRun {
        mitigated: mitigated_estimate(&signed, gamma_total)?,
        raw: mean(&raw_vals),
        raw_std_err: std_err(&raw_vals),
        gamma_total,
        negative_fraction: negative as f64 / config.shots as f64,
        insertions: ins.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invert::invert;
    use crate::learn::{layer_circuit, learn_layer_channel, propagate_through_layers, LearnConfig};
    use ca_circuit::Pauli;
    use ca_core::{compile, CompileOptions, Strategy};
    use ca_device::{uniform_device, Topology};
    use ca_sim::{Engine, NoiseConfig, Simulator};

    /// A 2-qubit device whose only noise is 2q depolarizing error —
    /// the cleanest end-to-end PEC check: the learner sees exactly a
    /// Pauli channel, so the inverse cancels it (up to shot noise).
    fn depol_setup(p: f64) -> (ca_device::Device, NoiseConfig) {
        let mut dev = uniform_device(Topology::line(2), 0.0);
        let keys: Vec<_> = dev.calibration.edges.keys().copied().collect();
        for k in keys {
            dev.calibration.edges.get_mut(&k).unwrap().gate_err_2q = p;
        }
        let noise = NoiseConfig {
            gate_error: true,
            ..NoiseConfig::ideal()
        };
        (dev, noise)
    }

    #[test]
    fn anchors_cover_each_layer_application() {
        let dev = uniform_device(Topology::line(4), 0.0);
        let layer = [(0usize, 1usize), (2, 3)];
        let qc = layer_circuit(4, &[(0, Pauli::Z)], &layer, 3);
        let sc = compile(&qc, &dev, &CompileOptions::new(Strategy::Bare, 3)).unwrap();
        let anchors = layer_anchor_items(&sc, layer.len()).unwrap();
        assert_eq!(anchors.len(), 3, "one anchor per layer application");
        // Mismatched layer size is a structured error.
        let err = layer_anchor_items(&sc, 4).unwrap_err();
        assert!(matches!(err, MitigationError::AnchorMismatch { .. }));
    }

    #[test]
    fn pec_cancels_a_learned_depolarizing_channel() {
        let p = 0.05;
        let (dev, noise) = depol_setup(p);
        let layer = [(0usize, 1usize)];
        let parts = [vec![0usize, 1]];
        let cfg = LearnConfig {
            depths: vec![1, 2, 4, 8],
            shots: 2048,
            instances: 1,
            seed: 23,
            noise,
        };
        let learned = learn_layer_channel(&dev, Strategy::Bare, &layer, &parts, &cfg).unwrap();
        let quasi = invert(&learned.channel).unwrap();
        assert!(quasi.gamma > 1.0, "noisy channel must cost γ > 1");

        // Mitigate ⟨ZZ propagated⟩ after 4 layer applications.
        let depth = 4;
        let preps = [(0usize, Pauli::Z), (1usize, Pauli::Z)];
        let qc = layer_circuit(2, &preps, &layer, depth);
        let sc = compile(&qc, &dev, &CompileOptions::new(Strategy::Bare, 31)).unwrap();
        let anchors = layer_anchor_items(&sc, layer.len()).unwrap();
        assert_eq!(anchors.len(), depth);
        let mut prep = ca_circuit::PauliString::identity(2);
        prep.paulis[0] = Pauli::Z;
        prep.paulis[1] = Pauli::Z;
        let observable = propagate_through_layers(&prep, &layer, depth);

        let session = Session::new(Simulator::with_engine(dev, noise, Engine::FrameBatch));
        let run = mitigate_pauli(
            &session,
            &sc,
            &anchors,
            &quasi,
            &observable,
            &PecConfig {
                shots: 6000,
                seed: 5,
                workers: None,
            },
        )
        .unwrap();

        // The raw signal decays measurably; the mitigated one must be
        // closer to the ideal value 1 and statistically consistent
        // with it.
        assert!(run.raw < 0.9, "raw decays: {}", run.raw);
        let ideal = 1.0;
        assert!(
            (run.mitigated.value - ideal).abs() < (run.raw - ideal).abs(),
            "mitigated {} must beat raw {}",
            run.mitigated.value,
            run.raw
        );
        assert!(
            (run.mitigated.value - ideal).abs() < 4.0 * run.mitigated.std_err.max(0.01),
            "mitigated {} ± {} vs ideal",
            run.mitigated.value,
            run.mitigated.std_err
        );
        // The γ accounting shows up as an amplified error bar.
        assert!(run.gamma_total > 1.0);
        assert!(run.mitigated.std_err > run.raw_std_err);
        assert!(run.insertions > 0);
    }

    #[test]
    fn empty_anchor_list_degenerates_to_raw() {
        let (dev, noise) = depol_setup(0.03);
        let layer = [(0usize, 1usize)];
        let qc = layer_circuit(2, &[(0, Pauli::Z)], &layer, 1);
        let sc = compile(&qc, &dev, &CompileOptions::new(Strategy::Bare, 7)).unwrap();
        let quasi = invert(&crate::channel::LayerChannel {
            partitions: vec![crate::channel::PartitionChannel::identity(vec![0, 1])],
        })
        .unwrap();
        let mut obs = ca_circuit::PauliString::identity(2);
        obs.paulis[0] = Pauli::Z;
        let observable = propagate_through_layers(&obs, &layer, 1);
        let session = Session::new(Simulator::with_engine(dev, noise, Engine::FrameBatch));
        let run = mitigate_pauli(
            &session,
            &sc,
            &[],
            &quasi,
            &observable,
            &PecConfig {
                shots: 500,
                seed: 9,
                workers: None,
            },
        )
        .unwrap();
        assert_eq!(run.gamma_total, 1.0);
        assert_eq!(run.insertions, 0);
        assert!((run.mitigated.value - run.raw).abs() < 1e-12);
    }
}

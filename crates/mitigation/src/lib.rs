#![forbid(unsafe_code)]
//! # ca-mitigation
//!
//! Noise learning and probabilistic error cancellation (PEC) — the
//! mitigation consequence of the paper's Fig. 8 (Secs. V-B/C): once a
//! layer's residual twirled noise is learned as a sparse Pauli
//! channel, the channel can be *inverted* as a quasi-probability
//! distribution and cancelled by sampling signed Pauli insertions,
//! at a sampling cost governed by γ — which is exactly what
//! context-aware compiling shrinks (γ 2.38 → 1.81 → 1.48 → 1.29 from
//! bare → DD → CA-DD → CA-EC).
//!
//! The pipeline, one module per stage:
//!
//! * [`channel`] — sparse per-partition Pauli channels and the
//!   Walsh–Hadamard transform between error probabilities and Pauli
//!   fidelities;
//! * [`learn`] — the cycle-benchmarking-style learner: prepares Pauli
//!   eigenstates on the disjoint partitions of a layer, tracks them
//!   through `d` twirled layer applications, and fits the
//!   exponential decay of every Pauli fidelity with
//!   [`ca_metrics::fit_decay`];
//! * [`invert`] — the quasi-probability inverter with exact γ
//!   accounting (`γ = Σ|q|`, always ≥ 1, multiplicative over
//!   partitions and layer applications);
//! * [`pec`] — the PEC executor: draws inverse-channel Pauli
//!   insertions per shot, runs **one** compiled plan for all sampled
//!   instances via the session's plan cache
//!   ([`ca_sim::Session::compiled`] → [`ca_sim::CompiledCircuit`]),
//!   and returns the sign-weighted mitigated expectation with its
//!   γ-amplified standard error.
//!
//! Everything is deterministic for a fixed seed, and the execution
//! path inherits the frame engines' bit-identity guarantee: PEC
//! counts are identical between the serial stabilizer engine and the
//! bit-parallel batch engine for any seed, shot count, and worker
//! count.

#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod invert;
pub mod learn;
pub mod pec;

pub use channel::{LayerChannel, PartitionChannel};
pub use error::MitigationError;
pub use invert::{invert, invert_clamped, QuasiChannel, QuasiPartition, MIN_INVERTIBLE_FIDELITY};
pub use learn::{
    layer_circuit, learn_layer_channel, propagate_through_layers, LearnConfig, LearnedLayer,
};
pub use pec::{layer_anchor_items, mitigate_pauli, PecConfig, PecRun};

//! Sparse Pauli channels over the disjoint partitions of a layer.
//!
//! A learned layer channel is modelled as a tensor product of small
//! Pauli channels, one per partition (a gate pair, an adjacent idle
//! pair, or an idle single — the same disjoint cover the
//! layer-fidelity protocol measures). Each partition channel is a
//! probability distribution over the `4^k` Paulis on its `k ≤ 2`
//! qubits, indexed base-4 (qubit `j` of the partition contributes
//! `pauli.index() · 4^j`).
//!
//! The two natural bases are connected by a signed Walsh–Hadamard
//! transform: the channel's *Pauli fidelities* are
//! `f_b = Σ_a (−1)^{⟨a,b⟩} p_a` with `⟨a,b⟩` the symplectic product
//! (1 when the Paulis anticommute), and the transform is its own
//! inverse up to `4^{−k}`. Cycle benchmarking measures `f`, PEC needs
//! `p` (and `1/f` — see [`crate::invert`]); everything in this module
//! is exact arithmetic on those vectors.

use ca_circuit::Pauli;

/// Per-qubit Pauli factors of a base-4 partition Pauli index.
pub fn index_paulis(index: usize, k: usize) -> Vec<Pauli> {
    (0..k)
        .map(|j| Pauli::from_index(index >> (2 * j) & 3))
        .collect()
}

/// The non-identity Pauli factors of a partition index resolved to
/// the partition's (global) qubits — the form insertions and error
/// descriptions use.
pub fn index_paulis_on(index: usize, qubits: &[usize]) -> Vec<(usize, Pauli)> {
    index_paulis(index, qubits.len())
        .into_iter()
        .zip(qubits.iter())
        .filter(|(p, _)| *p != Pauli::I)
        .map(|(p, &q)| (q, p))
        .collect()
}

/// Symplectic product of two partition Pauli indices: true when the
/// corresponding Pauli strings anticommute.
pub fn anticommutes(a: usize, b: usize, k: usize) -> bool {
    let mut parity = false;
    for j in 0..k {
        let pa = Pauli::from_index(a >> (2 * j) & 3);
        let pb = Pauli::from_index(b >> (2 * j) & 3);
        if !pa.commutes_with(pb) {
            parity = !parity;
        }
    }
    parity
}

/// Pauli-string product of two partition indices, signs dropped
/// (distributions don't carry phases): per-qubit symplectic XOR.
pub fn product_index(a: usize, b: usize, k: usize) -> usize {
    let mut out = 0usize;
    for j in 0..k {
        let pa = Pauli::from_index(a >> (2 * j) & 3);
        let pb = Pauli::from_index(b >> (2 * j) & 3);
        let (_, p) = pa.mul(pb);
        out |= p.index() << (2 * j);
    }
    out
}

/// Pauli fidelities of a probability vector: `f_b = Σ_a ±p_a`.
pub fn probs_to_fidelities(probs: &[f64]) -> Vec<f64> {
    let _s = ca_obs::span("channel", "wht").with_arg("len", probs.len() as f64);
    let k = partition_width(probs.len());
    (0..probs.len())
        .map(|b| {
            probs
                .iter()
                .enumerate()
                .map(|(a, &p)| if anticommutes(a, b, k) { -p } else { p })
                .sum()
        })
        .collect()
}

/// Inverse transform: `p_a = 4^{−k} Σ_b ±f_b`. Exact when the
/// fidelities came from a genuine distribution; fitted fidelities may
/// produce small negatives (see [`PartitionChannel::from_fidelities`]).
pub fn fidelities_to_probs(fidelities: &[f64]) -> Vec<f64> {
    let _s = ca_obs::span("channel", "wht").with_arg("len", fidelities.len() as f64);
    let k = partition_width(fidelities.len());
    let norm = 1.0 / fidelities.len() as f64;
    (0..fidelities.len())
        .map(|a| {
            norm * fidelities
                .iter()
                .enumerate()
                .map(|(b, &f)| if anticommutes(a, b, k) { -f } else { f })
                .sum::<f64>()
        })
        .collect()
}

/// Number of qubits `k` with `4^k == len` (panics on non-powers —
/// internal vectors are always built with valid lengths).
fn partition_width(len: usize) -> usize {
    let mut k = 0;
    let mut size = 1;
    while size < len {
        size *= 4;
        k += 1;
    }
    assert_eq!(size, len, "partition vector length must be a power of 4");
    k
}

/// A Pauli channel on one partition's qubits: a probability
/// distribution over the `4^k` partition Paulis.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionChannel {
    /// The partition's qubits (global indices), base-4 digit order.
    pub qubits: Vec<usize>,
    /// `probs[a]` = probability of Pauli error `a`; sums to 1.
    pub probs: Vec<f64>,
}

impl PartitionChannel {
    /// The identity channel (no error) on the given qubits.
    pub fn identity(qubits: Vec<usize>) -> Self {
        let mut probs = vec![0.0; 1 << (2 * qubits.len())];
        probs[0] = 1.0;
        Self { qubits, probs }
    }

    /// Builds the channel from fitted Pauli fidelities (`f_0` is
    /// forced to 1). Statistical noise in the fits can push the
    /// transformed probabilities slightly negative; those are clamped
    /// to zero and the vector renormalized, so the result is always a
    /// valid distribution — the projection step every sparse-model
    /// noise learner performs.
    pub fn from_fidelities(qubits: Vec<usize>, fidelities: &[f64]) -> Self {
        assert_eq!(fidelities.len(), 1 << (2 * qubits.len()));
        let mut f = fidelities.to_vec();
        f[0] = 1.0;
        let mut probs = fidelities_to_probs(&f);
        for p in &mut probs {
            if *p < 0.0 || !p.is_finite() {
                *p = 0.0;
            }
        }
        let total: f64 = probs.iter().sum();
        if total <= 0.0 {
            // Pathological fit (all mass clamped away): fall back to
            // the identity channel rather than divide by zero.
            return Self::identity(qubits);
        }
        for p in &mut probs {
            *p /= total;
        }
        Self { qubits, probs }
    }

    /// Number of qubits in the partition.
    pub fn width(&self) -> usize {
        self.qubits.len()
    }

    /// The channel's (cleaned) Pauli fidelities.
    pub fn fidelities(&self) -> Vec<f64> {
        probs_to_fidelities(&self.probs)
    }

    /// Mean Pauli fidelity over the non-identity Paulis — the
    /// per-partition λ the layer-fidelity protocol's decay average
    /// estimates.
    pub fn mean_nonidentity_fidelity(&self) -> f64 {
        let f = self.fidelities();
        f.iter().skip(1).sum::<f64>() / (f.len() - 1) as f64
    }

    /// The Pauli factors of error index `a` on the partition's
    /// (global) qubits, identities skipped.
    pub fn error_paulis(&self, a: usize) -> Vec<(usize, Pauli)> {
        index_paulis_on(a, &self.qubits)
    }

    /// Composes `self` after `other` (order irrelevant for Pauli
    /// channels): the XOR-convolution of the two distributions.
    pub fn compose(&self, other: &PartitionChannel) -> PartitionChannel {
        assert_eq!(self.qubits, other.qubits);
        let k = self.width();
        let mut probs = vec![0.0; self.probs.len()];
        for (a, &pa) in self.probs.iter().enumerate() {
            for (b, &pb) in other.probs.iter().enumerate() {
                probs[product_index(a, b, k)] += pa * pb;
            }
        }
        PartitionChannel {
            qubits: self.qubits.clone(),
            probs,
        }
    }
}

/// The learned noise channel of one layer: a tensor product of
/// independent partition channels covering every qubit.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerChannel {
    /// Per-partition channels (disjoint supports).
    pub partitions: Vec<PartitionChannel>,
}

impl LayerChannel {
    /// The layer-fidelity estimate implied by the learned channel:
    /// the product over partitions of the mean non-identity Pauli
    /// fidelity — the quantity the Fig. 8 protocol's per-partition
    /// decay averages multiply into LF.
    pub fn layer_fidelity(&self) -> f64 {
        self.partitions
            .iter()
            .map(PartitionChannel::mean_nonidentity_fidelity)
            .product()
    }

    /// Total error probability per layer application:
    /// `1 − Π p_I` over partitions.
    pub fn error_probability(&self) -> f64 {
        1.0 - self.partitions.iter().map(|p| p.probs[0]).product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anticommutation_matches_pauli_algebra() {
        // 1q: X vs Z anticommute, X vs X commute, I commutes with all.
        assert!(anticommutes(1, 3, 1));
        assert!(!anticommutes(1, 1, 1));
        assert!(!anticommutes(0, 2, 1));
        // 2q: XX vs ZZ — two anticommuting factors — commutes overall.
        let xx = 0b0101; // X on both qubits
        let zz = 0b1111; // Z on both qubits
        assert!(!anticommutes(xx, zz, 2));
        // XI vs ZI anticommutes.
        assert!(anticommutes(1, 3, 2));
    }

    #[test]
    fn transform_round_trips() {
        for k in [1usize, 2] {
            let len = 1 << (2 * k);
            // A deterministic, normalized pseudo-random distribution.
            let mut probs: Vec<f64> = (0..len).map(|i| 1.0 + ((i as f64 * 2.399) % 1.0)).collect();
            let total: f64 = probs.iter().sum();
            for p in &mut probs {
                *p /= total;
            }
            let f = probs_to_fidelities(&probs);
            assert!((f[0] - 1.0).abs() < 1e-12, "f_I is the total mass");
            let back = fidelities_to_probs(&f);
            for (a, b) in probs.iter().zip(back.iter()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn known_single_qubit_channel_fidelities() {
        // Z-flip with probability p: f_X = f_Y = 1−2p, f_Z = 1.
        let p = 0.07;
        let ch = PartitionChannel {
            qubits: vec![0],
            probs: vec![1.0 - p, 0.0, 0.0, p],
        };
        let f = ch.fidelities();
        assert!((f[1] - (1.0 - 2.0 * p)).abs() < 1e-12);
        assert!((f[2] - (1.0 - 2.0 * p)).abs() < 1e-12);
        assert!((f[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_fidelities_projects_to_a_distribution() {
        // Inconsistent (noisy) fidelities would give a negative
        // probability; the constructor must clamp and renormalize.
        let f = [1.0, 0.9, 0.99, 0.99];
        let ch = PartitionChannel::from_fidelities(vec![2], &f);
        let total: f64 = ch.probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(ch.probs.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn compose_with_identity_is_identity_op() {
        let ch = PartitionChannel {
            qubits: vec![0, 1],
            probs: {
                let mut p = vec![0.0; 16];
                p[0] = 0.9;
                p[5] = 0.06; // XX
                p[15] = 0.04; // ZZ
                p
            },
        };
        let id = PartitionChannel::identity(vec![0, 1]);
        assert_eq!(ch.compose(&id), ch);
        // Composing with itself doubles the error to first order and
        // the XX·XX products return mass to identity.
        let twice = ch.compose(&ch);
        assert!(twice.probs[0] < ch.probs[0]);
        assert!((twice.probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn layer_fidelity_multiplies_partitions() {
        let a = PartitionChannel {
            qubits: vec![0],
            probs: vec![0.95, 0.0, 0.0, 0.05],
        };
        let b = PartitionChannel::identity(vec![1]);
        let layer = LayerChannel {
            partitions: vec![a.clone(), b],
        };
        assert!((layer.layer_fidelity() - a.mean_nonidentity_fidelity()).abs() < 1e-12);
        assert!((layer.error_probability() - 0.05).abs() < 1e-12);
    }
}

//! Structured mitigation errors, following the `ca-sim::SimError`
//! conventions: degenerate inputs yield a typed error, never a panic.

use ca_core::CompileError;
use ca_metrics::MetricsError;
use ca_sim::SimError;
use std::fmt;

/// Why a mitigation stage could not run.
#[derive(Clone, Debug, PartialEq)]
pub enum MitigationError {
    /// The simulator rejected a circuit (non-Clifford on a frame
    /// engine, arity mismatch, invalid insertion, …).
    Sim(SimError),
    /// The compiler rejected a pipeline (layered-form pass after
    /// scheduling, ensemble misuse, …).
    Compile(CompileError),
    /// An analysis estimator rejected its input (degenerate layer or
    /// Pauli fidelity).
    Metrics(MetricsError),
    /// A learned Pauli fidelity is too small to invert: `1/f` would
    /// amplify sampling noise past any useful γ budget. Re-learn with
    /// more shots/depths or a better-compiled layer.
    DegenerateFidelity {
        /// Partition index within the learned layer.
        partition: usize,
        /// Pauli index (base-4 over the partition's qubits) of the
        /// offending fidelity.
        pauli_index: usize,
        /// The fidelity the fit produced.
        fidelity: f64,
    },
    /// The scheduled circuit's two-qubit gate count is not a multiple
    /// of the layer size, so per-layer insertion anchors cannot be
    /// identified (e.g. the compile strategy added two-qubit
    /// compensation gates).
    AnchorMismatch {
        /// Two-qubit unitary items found in the scheduled circuit.
        two_qubit_items: usize,
        /// Two-qubit gates per layer application expected.
        gates_per_layer: usize,
    },
    /// The learner needs at least two depths to fit a decay.
    NotEnoughDepths {
        /// Depths supplied.
        got: usize,
    },
    /// The PEC executor needs at least one shot to estimate anything.
    NoShots,
}

impl fmt::Display for MitigationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MitigationError::Sim(e) => write!(f, "simulation failed: {e}"),
            MitigationError::Compile(e) => write!(f, "compilation failed: {e}"),
            MitigationError::Metrics(e) => write!(f, "estimator failed: {e}"),
            MitigationError::DegenerateFidelity {
                partition,
                pauli_index,
                fidelity,
            } => write!(
                f,
                "learned Pauli fidelity {fidelity} (partition {partition}, Pauli index \
                 {pauli_index}) is below the invertibility floor"
            ),
            MitigationError::AnchorMismatch {
                two_qubit_items,
                gates_per_layer,
            } => write!(
                f,
                "cannot place per-layer insertion anchors: {two_qubit_items} two-qubit \
                 items is not a multiple of the layer size {gates_per_layer}"
            ),
            MitigationError::NotEnoughDepths { got } => {
                write!(f, "need at least 2 decay depths, got {got}")
            }
            MitigationError::NoShots => write!(f, "PEC needs at least one shot"),
        }
    }
}

impl std::error::Error for MitigationError {}

impl From<SimError> for MitigationError {
    fn from(e: SimError) -> Self {
        MitigationError::Sim(e)
    }
}

impl From<CompileError> for MitigationError {
    fn from(e: CompileError) -> Self {
        MitigationError::Compile(e)
    }
}

impl From<MetricsError> for MitigationError {
    fn from(e: MetricsError) -> Self {
        MitigationError::Metrics(e)
    }
}

//! Cycle-benchmarking-style Pauli-channel learning.
//!
//! The protocol generalizes the layer-fidelity recipe (Fig. 8) from
//! *one random Pauli per partition* to *every* Pauli of every
//! partition: for experiment `e`, each partition prepares the
//! eigenstate of its `((e mod (4^k−1)) + 1)`-th Pauli, the compiled
//! layer is applied `d` times, and the sign-corrected expectation of
//! the Clifford-propagated Pauli is fitted to `A·λ^d` with
//! [`ca_metrics::fit_decay`]. The fitted `λ` is the (orbit-averaged)
//! *Pauli fidelity* of the layer's twirled noise channel for that
//! Pauli; the full fidelity vector transforms into the channel's
//! error probabilities ([`crate::channel`]).
//!
//! All partitions are disjoint, so one simulation per depth measures
//! every partition simultaneously — the experiment count is set by
//! the widest partition (15 for pairs), not by the qubit count.
//! Clifford-compiled strategies run on the bit-parallel frame-batch
//! engine (the learner's circuits are pure Clifford); non-Clifford
//! strategies (CA-EC's compensation angles) fall back to
//! `Engine::Auto`, i.e. the dense engine at small sizes.
//!
//! SPAM robustness: state-preparation/measurement error lands in the
//! fit's amplitude `A`, not in `λ` — the standard cycle-benchmarking
//! argument — so the learned channel is genuinely per-layer.

use crate::channel::{index_paulis, LayerChannel, PartitionChannel};
use crate::error::MitigationError;
use ca_circuit::clifford::propagate_2q;
use ca_circuit::{schedule_asap, Circuit, Gate, Pauli, PauliString, ScheduledCircuit};
use ca_core::{pipeline, CompileOptions, Context, Strategy};
use ca_device::Device;
use ca_metrics::fit_decay;
use ca_sim::{clifford_supports, Engine, Job, NoiseConfig, Session, Simulator};

/// Budget and seeding of one learning run.
#[derive(Clone, Debug)]
pub struct LearnConfig {
    /// Layer repetition depths the decays are fitted over (≥ 2).
    pub depths: Vec<usize>,
    /// Shots per expectation estimate.
    pub shots: usize,
    /// Independent twirl/compile instances averaged per data point.
    pub instances: usize,
    /// Base RNG seed (compilation twirl, simulation noise).
    pub seed: u64,
    /// Noise processes enabled during learning. Defaults to the
    /// layer-fidelity experiments' model: everything but readout
    /// error (the learner measures in expectation mode).
    pub noise: NoiseConfig,
}

impl LearnConfig {
    /// A small deterministic budget for tests.
    pub fn quick(seed: u64) -> Self {
        Self {
            depths: vec![1, 2, 4],
            shots: 192,
            instances: 1,
            seed,
            noise: NoiseConfig {
                readout_error: false,
                ..NoiseConfig::default()
            },
        }
    }

    /// A benchmark-quality budget.
    pub fn full(seed: u64) -> Self {
        Self {
            depths: vec![1, 2, 4, 8],
            shots: 1024,
            instances: 4,
            seed,
            noise: NoiseConfig {
                readout_error: false,
                ..NoiseConfig::default()
            },
        }
    }
}

/// A learned per-layer noise channel plus its diagnostics.
#[derive(Clone, Debug)]
pub struct LearnedLayer {
    /// The projected (valid) Pauli channel, one factor per partition.
    pub channel: LayerChannel,
    /// Layer fidelity implied by the cleaned channel — comparable to
    /// the Fig. 8 LF numbers.
    pub lf: f64,
    /// Raw fitted λ per partition per Pauli index (index 0 unused).
    pub raw_lambdas: Vec<Vec<f64>>,
    /// Engine the decay circuits ran on (`"frame-batch"` for
    /// Clifford strategies).
    pub engine: String,
}

/// Builds the benchmark circuit: Pauli-eigenstate preparation on
/// every partition, then `depth` copies of the ECR layer. The same
/// builder serves the learner and the PEC executor, so anchors found
/// in one apply to the other.
pub fn layer_circuit(
    n: usize,
    preps: &[(usize, Pauli)],
    layer: &[(usize, usize)],
    depth: usize,
) -> Circuit {
    let mut qc = Circuit::new(n, 0);
    for &(q, p) in preps {
        match p {
            Pauli::I | Pauli::Z => {}
            Pauli::X => {
                qc.h(q);
            }
            Pauli::Y => {
                qc.h(q);
                qc.s(q);
            }
        }
    }
    qc.barrier(Vec::<usize>::new());
    for _ in 0..depth {
        for &(c, t) in layer {
            qc.ecr(c, t);
        }
        qc.barrier(Vec::<usize>::new());
    }
    qc
}

/// Propagates a Pauli string through `d` applications of the layer's
/// Clifford action (signs tracked).
pub fn propagate_through_layers(
    prep: &PauliString,
    layer: &[(usize, usize)],
    d: usize,
) -> PauliString {
    let mut p = prep.clone();
    for _ in 0..d {
        for &(c, t) in layer {
            p = propagate_2q(&p, Gate::Ecr, c, t);
        }
    }
    p
}

/// Learns the per-layer Pauli channel of `layer` compiled under
/// `strategy`, one independent channel factor per partition.
/// `partitions` must be disjoint (gate pairs, idle pairs, idle
/// singles — as produced by the layer-fidelity experiments).
pub fn learn_layer_channel(
    device: &Device,
    strategy: Strategy,
    layer: &[(usize, usize)],
    partitions: &[Vec<usize>],
    config: &LearnConfig,
) -> Result<LearnedLayer, MitigationError> {
    if config.depths.len() < 2 {
        return Err(MitigationError::NotEnoughDepths {
            got: config.depths.len(),
        });
    }
    let n = device.topology.num_qubits;
    let widths: Vec<usize> = partitions.iter().map(Vec::len).collect();
    let pauli_counts: Vec<usize> = widths.iter().map(|&k| (1 << (2 * k)) - 1).collect();
    let experiments = pauli_counts.iter().copied().max().unwrap_or(0);

    // One session per engine policy: strictly Clifford decay circuits
    // run on the pinned frame-batch session, CA-EC's non-Clifford
    // compensations on the auto session (dense at small sizes). The
    // sessions' plan caches persist across every (experiment, depth,
    // instance) job of this learning run.
    let frame_session = Session::new(Simulator::with_engine(
        device.clone(),
        config.noise,
        Engine::FrameBatch,
    ));
    let auto_session = Session::new(Simulator::with_engine(
        device.clone(),
        config.noise,
        Engine::Auto,
    ));

    // Compile every (experiment, depth, instance) point up front and
    // run them as one job batch per session — experiments fan out
    // across worker threads at job granularity.
    let compile_span = ca_obs::span("learn", "compile-points")
        .with_arg("experiments", experiments as f64)
        .with_arg("depths", config.depths.len() as f64)
        .with_arg("instances", config.instances as f64);
    let mut indices_by_e: Vec<Vec<usize>> = Vec::with_capacity(experiments);
    let mut frame_jobs: Vec<Job> = Vec::new();
    let mut auto_jobs: Vec<Job> = Vec::new();
    // Per (e, depth index): (on_frame_session, job index) per instance.
    let mut tags: Vec<Vec<Vec<(bool, usize)>>> = Vec::with_capacity(experiments);
    let mut engine_name = String::new();
    for e in 0..experiments {
        // This experiment's Pauli index per partition (1-based; every
        // partition is exercised in every experiment).
        let indices: Vec<usize> = pauli_counts.iter().map(|&c| (e % c) + 1).collect();
        let preps: Vec<(usize, Pauli)> = partitions
            .iter()
            .zip(indices.iter())
            .flat_map(|(part, &idx)| {
                index_paulis(idx, part.len())
                    .into_iter()
                    .zip(part.iter())
                    .map(|(p, &q)| (q, p))
            })
            .collect();
        let mut prep_string = PauliString::identity(n);
        for &(q, p) in &preps {
            prep_string.paulis[q] = p;
        }

        let mut e_tags = Vec::with_capacity(config.depths.len());
        for &d in &config.depths {
            // Circuit construction and observable propagation are
            // attributed separately from the compile pipeline: at deep
            // depths the Clifford propagation of every partition's
            // observable is real wall time that would otherwise vanish
            // from the learn breakdown.
            let build_span = ca_obs::span("learn", "build-point")
                .with_arg("experiment", e as f64)
                .with_arg("depth", d as f64);
            let circuit = layer_circuit(n, &preps, layer, d);
            let observables: Vec<PauliString> = partitions
                .iter()
                .map(|part| {
                    let mut p = PauliString::identity(n);
                    for &q in part {
                        p.paulis[q] = prep_string.paulis[q];
                    }
                    propagate_through_layers(&p, layer, d)
                })
                .collect();
            drop(build_span);
            let mut inst_tags = Vec::with_capacity(config.instances);
            for inst in 0..config.instances {
                let seed = config
                    .seed
                    .wrapping_add(inst as u64 * 7919)
                    .wrapping_add(e as u64 * 104729)
                    .wrapping_add(d as u64);
                let opts = CompileOptions::new(strategy, seed);
                let pm = pipeline(&opts);
                let mut ctx = Context::new(device, seed);
                let sc = pm.compile(&circuit, &mut ctx)?;
                let on_frame = clifford_supports(&sc);
                let session = if on_frame {
                    &frame_session
                } else {
                    &auto_session
                };
                engine_name = session.simulator().engine_name_for(&sc)?.to_string();
                let job = Job::expect(sc, observables.clone(), config.shots, seed ^ 0x77);
                let jobs = if on_frame {
                    &mut frame_jobs
                } else {
                    &mut auto_jobs
                };
                inst_tags.push((on_frame, jobs.len()));
                jobs.push(job);
            }
            e_tags.push(inst_tags);
        }
        indices_by_e.push(indices);
        tags.push(e_tags);
    }

    drop(compile_span);
    ca_obs::counter_add("learn.points", (frame_jobs.len() + auto_jobs.len()) as u64);

    let frame_out = {
        let _s = ca_obs::span("learn", "simulate").with_arg("jobs", frame_jobs.len() as f64);
        frame_session.submit(&frame_jobs)
    };
    let auto_out = {
        let _s = ca_obs::span("learn", "simulate").with_arg("jobs", auto_jobs.len() as f64);
        auto_session.submit(&auto_jobs)
    };
    let value_of = |&(on_frame, idx): &(bool, usize)| -> Result<Vec<f64>, MitigationError> {
        let out = if on_frame {
            &frame_out[idx]
        } else {
            &auto_out[idx]
        };
        match out {
            Ok(o) => Ok(o.expectations().expect("expect job").to_vec()), // ca-lint: allow(panic) -- learner submits expect jobs only
            Err(e) => Err(e.clone().into()),
        }
    };

    // Fitted λ samples per (partition, Pauli index).
    let mut samples: Vec<Vec<Vec<f64>>> = pauli_counts
        .iter()
        .map(|&c| vec![Vec::new(); c + 1])
        .collect();
    for (e, e_tags) in tags.iter().enumerate() {
        let xs: Vec<f64> = config.depths.iter().map(|&d| d as f64).collect();
        let mut ys: Vec<Vec<f64>> = vec![Vec::new(); partitions.len()];
        for inst_tags in e_tags {
            let mut acc = vec![0.0; partitions.len()];
            for tag in inst_tags {
                let vals = value_of(tag)?;
                for (a, v) in acc.iter_mut().zip(vals.iter()) {
                    *a += v;
                }
            }
            for (part_ys, a) in ys.iter_mut().zip(acc.iter()) {
                part_ys.push(a / config.instances as f64);
            }
        }
        for (pi, part_ys) in ys.iter().enumerate() {
            // Per-partition fit timing + progress: the learner is the
            // slowest pipeline stage (ROADMAP item 5), so each decay
            // fit is individually visible in traces.
            let _s = ca_obs::span("learn", "fit-partition")
                .with_arg("experiment", e as f64)
                .with_arg("partition", pi as f64);
            let lambda = fit_decay(&xs, part_ys).lambda.clamp(1e-6, 1.0);
            samples[pi][indices_by_e[e][pi]].push(lambda);
            ca_obs::counter_add("learn.fits", 1);
        }
        ca_obs::counter_add("learn.experiments_done", 1);
    }

    let mut channels = Vec::with_capacity(partitions.len());
    let mut raw_lambdas = Vec::with_capacity(partitions.len());
    for (part, part_samples) in partitions.iter().zip(samples.iter()) {
        let mut fidelities = vec![1.0; part_samples.len()];
        for (idx, list) in part_samples.iter().enumerate().skip(1) {
            debug_assert!(!list.is_empty(), "every Pauli index gets measured");
            fidelities[idx] = list.iter().sum::<f64>() / list.len() as f64;
        }
        raw_lambdas.push(fidelities.clone());
        channels.push(PartitionChannel::from_fidelities(part.clone(), &fidelities));
    }
    let channel = LayerChannel {
        partitions: channels,
    };
    let lf = channel.layer_fidelity();
    Ok(LearnedLayer {
        channel,
        lf,
        raw_lambdas,
        engine: engine_name,
    })
}

/// Schedules a circuit with the device's calibrated durations —
/// convenience for tests and demos that bypass the compile pipeline.
pub fn schedule_plain(qc: &Circuit, device: &Device) -> ScheduledCircuit {
    schedule_asap(qc, device.durations())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_device::{uniform_device, Topology};

    fn line_device(n: usize, zz_khz: f64) -> Device {
        uniform_device(Topology::line(n), zz_khz)
    }

    #[test]
    fn rejects_single_depth() {
        let dev = line_device(2, 0.0);
        let cfg = LearnConfig {
            depths: vec![2],
            ..LearnConfig::quick(1)
        };
        let err =
            learn_layer_channel(&dev, Strategy::Bare, &[(0, 1)], &[vec![0, 1]], &cfg).unwrap_err();
        assert_eq!(err, MitigationError::NotEnoughDepths { got: 1 });
    }

    #[test]
    fn noiseless_layer_learns_the_identity_channel() {
        let dev = line_device(2, 0.0);
        let cfg = LearnConfig {
            noise: NoiseConfig::ideal(),
            ..LearnConfig::quick(3)
        };
        let learned =
            learn_layer_channel(&dev, Strategy::Bare, &[(0, 1)], &[vec![0, 1]], &cfg).unwrap();
        assert_eq!(learned.engine, "frame-batch");
        assert!((learned.lf - 1.0).abs() < 1e-9, "LF {}", learned.lf);
        assert!((learned.channel.partitions[0].probs[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn depolarizing_gate_error_is_recovered() {
        // Only 2q depolarizing error: each ECR injects a uniform
        // non-identity pair Pauli with probability p, so the learned
        // pair channel's total error probability must come out ≈ p.
        let mut dev = line_device(2, 0.0);
        let keys: Vec<_> = dev.calibration.edges.keys().copied().collect();
        let p = 0.06;
        for k in keys {
            dev.calibration.edges.get_mut(&k).unwrap().gate_err_2q = p;
        }
        let cfg = LearnConfig {
            depths: vec![1, 2, 4, 8],
            shots: 2048,
            instances: 1,
            seed: 11,
            noise: NoiseConfig {
                gate_error: true,
                ..NoiseConfig::ideal()
            },
        };
        let learned =
            learn_layer_channel(&dev, Strategy::Bare, &[(0, 1)], &[vec![0, 1]], &cfg).unwrap();
        let err_p = learned.channel.error_probability();
        assert!(
            (err_p - p).abs() < 0.02,
            "learned error probability {err_p} vs injected {p}"
        );
        // Valid distribution by construction.
        let probs = &learned.channel.partitions[0].probs;
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(probs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn idle_partitions_learn_their_twirled_dephasing() {
        // A 3-qubit line with ZZ crosstalk: the layer couples (0,1),
        // qubit 2 idles next to the target and accrues twirled ZZ/Z
        // noise — its learned single-qubit channel must show Z-type
        // error (f_X < 1) while staying a valid distribution.
        let dev = line_device(3, 70.0);
        let cfg = LearnConfig::quick(5);
        let learned = learn_layer_channel(
            &dev,
            Strategy::Bare,
            &[(0, 1)],
            &[vec![0, 1], vec![2]],
            &cfg,
        )
        .unwrap();
        let idle = &learned.channel.partitions[1];
        let f = idle.fidelities();
        assert!(f[1] < 0.999, "idle spectator must dephase: f_X = {}", f[1]);
        assert!((idle.probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(learned.lf < 1.0);
    }
}

//! Quasi-probability inversion of learned Pauli channels (Sec. V-B).
//!
//! A Pauli channel is diagonal in the Pauli-transfer basis: its
//! eigenvalues are the Pauli fidelities `f_b`. Its inverse is the map
//! with eigenvalues `1/f_b`, which transforms back to a *signed*
//! Pauli mixture `q_a = 4^{−k} Σ_b ±(1/f_b)` — a quasi-probability:
//! `Σ q_a = 1` but individual entries can be negative. PEC realises
//! the inverse by sampling Pauli `a` with probability `|q_a|/γ` and
//! weighting the outcome by `γ · sign(q_a)`, where `γ = Σ|q_a| ≥ 1`
//! is the sampling-overhead base. γ is exact here (no bound): it
//! multiplies across partitions and across mitigated layer
//! applications, which is the `γ^layers` explosion the paper's
//! overhead comparisons quote.

use crate::channel::{anticommutes, LayerChannel, PartitionChannel};
use crate::error::MitigationError;
use ca_circuit::Pauli;
use rand::rngs::StdRng;
use rand::RngExt;

/// Smallest Pauli fidelity the inverter accepts: below this, `1/f`
/// amplifies noise past any useful budget (γ per partition > ~40)
/// and a fit this deep in the noise floor carries no information.
pub const MIN_INVERTIBLE_FIDELITY: f64 = 0.025;

/// The signed sampling distribution inverting one partition channel.
#[derive(Clone, Debug, PartialEq)]
pub struct QuasiPartition {
    /// The partition's qubits (global indices), base-4 digit order.
    pub qubits: Vec<usize>,
    /// Signed quasi-probabilities; sums to exactly 1.
    pub quasi: Vec<f64>,
    /// `γ = Σ|q|` for this partition (≥ 1).
    pub gamma: f64,
    /// Cumulative |q| table for O(log) sampling.
    cumulative: Vec<f64>,
}

impl QuasiPartition {
    fn new(qubits: Vec<usize>, quasi: Vec<f64>) -> Self {
        let gamma: f64 = quasi.iter().map(|q| q.abs()).sum();
        let mut acc = 0.0;
        let cumulative = quasi
            .iter()
            .map(|q| {
                acc += q.abs();
                acc
            })
            .collect();
        Self {
            qubits,
            quasi,
            gamma,
            cumulative,
        }
    }

    /// Draws one inverse-channel element: the Pauli index and the
    /// sign of its quasi-probability.
    pub fn sample(&self, rng: &mut StdRng) -> (usize, i8) {
        let u: f64 = rng.random::<f64>() * self.gamma;
        let idx = self.cumulative.partition_point(|&c| c < u);
        let idx = idx.min(self.quasi.len() - 1);
        let sign = if self.quasi[idx] < 0.0 { -1 } else { 1 };
        (idx, sign)
    }

    /// The sampled element's Pauli factors on the (global) qubits,
    /// identities skipped.
    pub fn index_paulis(&self, idx: usize) -> Vec<(usize, Pauli)> {
        crate::channel::index_paulis_on(idx, &self.qubits)
    }
}

/// The quasi-probability inverse of a full layer channel.
#[derive(Clone, Debug, PartialEq)]
pub struct QuasiChannel {
    /// Per-partition inverses (disjoint supports).
    pub partitions: Vec<QuasiPartition>,
    /// Layer γ: the product of the partition γs — the overhead base
    /// the paper compares across strategies (`γ = LF^{−2}`-scale).
    pub gamma: f64,
}

impl QuasiChannel {
    /// The inverse restricted to the partitions that overlap
    /// `support` (global qubit indices). The learned channel is a
    /// tensor product over partitions, so an observable supported
    /// inside a subset of partitions is biased only by those factors
    /// — restricting the inverse cancels the same bias at a γ that
    /// pays only for the relevant partitions, which is what makes
    /// PEC affordable on a 127-qubit layer.
    pub fn restrict_to_support(&self, support: &[usize]) -> QuasiChannel {
        let partitions: Vec<QuasiPartition> = self
            .partitions
            .iter()
            .filter(|p| p.qubits.iter().any(|q| support.contains(q)))
            .cloned()
            .collect();
        let gamma = partitions.iter().map(|p| p.gamma).product();
        QuasiChannel { partitions, gamma }
    }
}

/// Inverts a learned layer channel partition by partition. Fails with
/// a structured error when any Pauli fidelity is at or below
/// [`MIN_INVERTIBLE_FIDELITY`] — the degenerate-fit case.
pub fn invert(channel: &LayerChannel) -> Result<QuasiChannel, MitigationError> {
    let mut partitions = Vec::with_capacity(channel.partitions.len());
    for (pi, part) in channel.partitions.iter().enumerate() {
        partitions.push(invert_partition(part, pi)?);
    }
    let gamma = partitions.iter().map(|p| p.gamma).product();
    Ok(QuasiChannel { partitions, gamma })
}

/// [`invert`] with every Pauli fidelity clamped up to `floor` first:
/// never fails, at the price of only *lower-bounding* γ for channels
/// deep in the noise floor. The honest tool for reporting a γ
/// trajectory that includes a hopeless strategy (bare compilation at
/// strong crosstalk) next to invertible ones; for actual PEC
/// execution use the strict [`invert`].
pub fn invert_clamped(channel: &LayerChannel, floor: f64) -> QuasiChannel {
    let partitions: Vec<QuasiPartition> = channel
        .partitions
        .iter()
        .map(|part| {
            let mut f: Vec<f64> = part
                .fidelities()
                .iter()
                .map(|&x| if x.is_finite() { x.max(floor) } else { floor })
                .collect();
            f[0] = 1.0;
            quasi_from_fidelities(part.qubits.clone(), &f)
        })
        .collect();
    let gamma = partitions.iter().map(|p| p.gamma).product();
    QuasiChannel { partitions, gamma }
}

fn invert_partition(
    part: &PartitionChannel,
    partition: usize,
) -> Result<QuasiPartition, MitigationError> {
    let f = part.fidelities();
    for (pauli_index, &fid) in f.iter().enumerate() {
        if fid <= MIN_INVERTIBLE_FIDELITY || !fid.is_finite() {
            return Err(MitigationError::DegenerateFidelity {
                partition,
                pauli_index,
                fidelity: fid,
            });
        }
    }
    Ok(quasi_from_fidelities(part.qubits.clone(), &f))
}

/// The signed inverse distribution from a (positive) fidelity vector:
/// `q = 4^{−k} · W(1/f)` with the signed Walsh transform `W`.
fn quasi_from_fidelities(qubits: Vec<usize>, f: &[f64]) -> QuasiPartition {
    let k = qubits.len();
    let len = f.len();
    let norm = 1.0 / len as f64;
    let quasi: Vec<f64> = (0..len)
        .map(|a| {
            norm * f
                .iter()
                .enumerate()
                .map(|(b, &fb)| {
                    let inv = 1.0 / fb;
                    if anticommutes(a, b, k) {
                        -inv
                    } else {
                        inv
                    }
                })
                .sum::<f64>()
        })
        .collect();
    QuasiPartition::new(qubits, quasi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{probs_to_fidelities, product_index};
    use rand::SeedableRng;

    fn z_flip_channel(p: f64) -> PartitionChannel {
        PartitionChannel {
            qubits: vec![0],
            probs: vec![1.0 - p, 0.0, 0.0, p],
        }
    }

    #[test]
    fn identity_channel_inverts_to_identity_with_gamma_one() {
        let layer = LayerChannel {
            partitions: vec![PartitionChannel::identity(vec![0, 1])],
        };
        let q = invert(&layer).unwrap();
        assert!((q.gamma - 1.0).abs() < 1e-12);
        assert!((q.partitions[0].quasi[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_flip_inverse_is_known_closed_form() {
        // Λ = (1−p)·I + p·Z ⇒ Λ⁻¹ has q_I = (1−p)/(1−2p), q_Z =
        // −p/(1−2p), γ = 1/(1−2p).
        let p = 0.1;
        let layer = LayerChannel {
            partitions: vec![z_flip_channel(p)],
        };
        let q = invert(&layer).unwrap();
        let qp = &q.partitions[0];
        assert!((qp.quasi[0] - (1.0 - p) / (1.0 - 2.0 * p)).abs() < 1e-12);
        assert!((qp.quasi[3] + p / (1.0 - 2.0 * p)).abs() < 1e-12);
        assert!((q.gamma - 1.0 / (1.0 - 2.0 * p)).abs() < 1e-12);
    }

    #[test]
    fn inverse_composed_with_channel_is_identity() {
        // Signed XOR-convolution of q with the channel's probs must
        // put all mass (weight 1) on identity.
        let p = 0.08;
        let ch = z_flip_channel(p);
        let layer = LayerChannel {
            partitions: vec![ch.clone()],
        };
        let q = invert(&layer).unwrap();
        let mut composed = [0.0; 4];
        for (a, &qa) in q.partitions[0].quasi.iter().enumerate() {
            for (b, &pb) in ch.probs.iter().enumerate() {
                composed[product_index(a, b, 1)] += qa * pb;
            }
        }
        assert!((composed[0] - 1.0).abs() < 1e-12);
        for &c in &composed[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_fidelity_is_a_structured_error() {
        // A fidelity at the noise floor must be refused, naming the
        // partition and Pauli.
        let f = [1.0, 0.01, 0.01, 1.0];
        let part = PartitionChannel::from_fidelities(vec![3], &f);
        let fids = probs_to_fidelities(&part.probs);
        assert!(fids[1] < MIN_INVERTIBLE_FIDELITY);
        let layer = LayerChannel {
            partitions: vec![part],
        };
        let err = invert(&layer).unwrap_err();
        assert!(matches!(
            err,
            MitigationError::DegenerateFidelity { partition: 0, .. }
        ));
    }

    #[test]
    fn restriction_keeps_only_overlapping_partitions() {
        let layer = LayerChannel {
            partitions: vec![
                z_flip_channel(0.1),
                PartitionChannel {
                    qubits: vec![1, 2],
                    probs: {
                        let mut p = vec![0.0; 16];
                        p[0] = 0.92;
                        p[5] = 0.08;
                        p
                    },
                },
                PartitionChannel::identity(vec![3]),
            ],
        };
        let q = invert(&layer).unwrap();
        let restricted = q.restrict_to_support(&[2]);
        assert_eq!(restricted.partitions.len(), 1);
        assert_eq!(restricted.partitions[0].qubits, vec![1, 2]);
        assert!(restricted.gamma < q.gamma);
        assert!(restricted.gamma >= 1.0);
    }

    #[test]
    fn sampling_frequencies_match_quasi_magnitudes() {
        let p = 0.12;
        let layer = LayerChannel {
            partitions: vec![z_flip_channel(p)],
        };
        let q = invert(&layer).unwrap();
        let qp = &q.partitions[0];
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40_000;
        let mut counts = [0usize; 4];
        let mut signed_sum = 0.0;
        for _ in 0..n {
            let (idx, sign) = qp.sample(&mut rng);
            counts[idx] += 1;
            signed_sum += sign as f64;
        }
        for (idx, &c) in counts.iter().enumerate() {
            let expect = qp.quasi[idx].abs() / qp.gamma;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "idx {idx}: {got} vs {expect}");
        }
        // E[sign]·γ = Σq = 1.
        let resampled_mass = signed_sum / n as f64 * qp.gamma;
        assert!((resampled_mass - 1.0).abs() < 0.05);
    }
}

//! Quickstart: compile one circuit with every suppression strategy and
//! compare the resulting fidelities on a noisy device, through the
//! session/job API (plans compile once into cached `CompiledCircuit`
//! artifacts; twirl instances run as parallel jobs).
//!
//! Run with: `cargo run --release --example quickstart`

use context_aware_compiling::prelude::*;
use context_aware_compiling::sim::{Job, Session};

fn main() {
    // A synthetic fixed-frequency device: 4-qubit line, 90 kHz
    // always-on ZZ on every coupled pair plus realistic coherence
    // numbers.
    let device = uniform_device(Topology::line(4), 90.0);

    // A Ramsey-style workload exposing two error contexts at once:
    // qubits 2,3 idle in superposition (case I) while qubits 0,1 run
    // repeated ECR gates whose control neighbours the idle pair.
    let mut qc = Circuit::new(4, 0);
    qc.h(2).h(3);
    qc.barrier(Vec::<usize>::new());
    for _ in 0..8 {
        qc.ecr(1, 0);
        qc.delay(480.0, 2).delay(480.0, 3);
        qc.barrier(Vec::<usize>::new());
    }
    qc.h(2).h(3);

    // One session = one simulator + one LRU plan cache. Every job
    // below compiles through it; resubmitting a circuit/seed pair
    // reuses the cached CompiledCircuit outright.
    let session = Session::new(Simulator::with_config(
        device.clone(),
        NoiseConfig {
            readout_error: false,
            ..NoiseConfig::default()
        },
    ));

    // Fidelity of the idle register returning to |00⟩.
    let observables: Vec<PauliString> = ["IIII", "IIZI", "IIIZ", "IIZZ"]
        .iter()
        .map(|s| PauliString::parse(s).unwrap())
        .collect();

    println!("strategy        P(00) on the idle pair");
    for strategy in Strategy::ALL {
        // Four independently twirled compile instances, submitted as
        // one job batch: the session fans them out across worker
        // threads and answers repeats from the plan cache.
        let instances = 4u64;
        let jobs: Vec<Job> = (0..instances)
            .map(|seed| {
                let compiled =
                    compile(&qc, &device, &CompileOptions::new(strategy, seed)).expect("compile");
                Job::expect(compiled, observables.clone(), 60, seed ^ 0xA5)
            })
            .collect();
        let total: f64 = session
            .submit(&jobs)
            .into_iter()
            .map(|r| {
                let vals = r.expect("simulate");
                let vals = vals.expectations().expect("expect job");
                vals.iter().sum::<f64>() / vals.len() as f64
            })
            .sum();
        println!("{:<14}  {:.4}", strategy.label(), total / instances as f64);
    }
    let stats = session.cache_stats();
    println!();
    println!("Expected shape: bare lowest; context-aware strategies highest.");
    println!(
        "plan cache: {} compiled, {} served from cache",
        stats.misses, stats.hits
    );
}

//! Quickstart: compile one circuit with every suppression strategy and
//! compare the resulting fidelities on a noisy device.
//!
//! Run with: `cargo run --release --example quickstart`

use context_aware_compiling::prelude::*;

fn main() {
    // A synthetic fixed-frequency device: 4-qubit line, 90 kHz
    // always-on ZZ on every coupled pair plus realistic coherence
    // numbers.
    let device = uniform_device(Topology::line(4), 90.0);

    // A Ramsey-style workload exposing two error contexts at once:
    // qubits 2,3 idle in superposition (case I) while qubits 0,1 run
    // repeated ECR gates whose control neighbours the idle pair.
    let mut qc = Circuit::new(4, 0);
    qc.h(2).h(3);
    qc.barrier(Vec::<usize>::new());
    for _ in 0..8 {
        qc.ecr(1, 0);
        qc.delay(480.0, 2).delay(480.0, 3);
        qc.barrier(Vec::<usize>::new());
    }
    qc.h(2).h(3);

    let sim = Simulator::with_config(
        device.clone(),
        NoiseConfig {
            readout_error: false,
            ..NoiseConfig::default()
        },
    );
    // Fidelity of the idle register returning to |00⟩.
    let observables: Vec<PauliString> = ["IIII", "IIZI", "IIIZ", "IIZZ"]
        .iter()
        .map(|s| PauliString::parse(s).unwrap())
        .collect();

    println!("strategy        P(00) on the idle pair");
    for strategy in Strategy::ALL {
        let mut total = 0.0;
        let instances = 4;
        for seed in 0..instances {
            let compiled = compile(&qc, &device, &CompileOptions::new(strategy, seed));
            let vals = sim
                .expect_paulis(&compiled, &observables, 60, seed ^ 0xA5)
                .expect("simulate");
            total += vals.iter().sum::<f64>() / vals.len() as f64;
        }
        println!("{:<14}  {:.4}", strategy.label(), total / instances as f64);
    }
    println!();
    println!("Expected shape: bare lowest; context-aware strategies highest.");
}

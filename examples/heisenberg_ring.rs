//! The Fig. 7 workload: Trotterized Heisenberg dynamics on a 12-spin
//! ring with canonical two-qubit gates, plus the error-mitigation
//! overhead estimate of Fig. 7d.
//!
//! Run with: `cargo run --release --example heisenberg_ring`

use context_aware_compiling::experiments::heisenberg;
use context_aware_compiling::experiments::Budget;

fn main() {
    let depths: Vec<usize> = (0..=6).collect();
    let budget = Budget {
        trajectories: 48,
        instances: 4,
        seed: 11,
    };
    let result = heisenberg::fig7(&depths, &budget);
    result.figure.print();
    println!();
    println!(
        "Estimated sampling overhead at d = {} (lower is better):",
        depths.last().unwrap()
    );
    for (label, o) in &result.overhead {
        println!("  {label:>16}: {o:.2}");
    }
}

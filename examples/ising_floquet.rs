//! The Fig. 6 workload end to end: Floquet Ising evolution at the
//! Clifford point with boundary qubits in |+⟩, comparing twirl-only
//! against the context-aware strategies.
//!
//! Run with: `cargo run --release --example ising_floquet`

use context_aware_compiling::experiments::ising;
use context_aware_compiling::experiments::Budget;

fn main() {
    let depths: Vec<usize> = (0..=8).collect();
    let budget = Budget {
        trajectories: 60,
        instances: 4,
        seed: 11,
    };
    let fig = ising::fig6(&depths, &budget);
    fig.print();
    println!();
    println!("The ideal boundary correlator alternates +1, 0, -1, 0, …;");
    println!("twirl-only noise washes it out, CA-EC and CA-DD restore it.");
}

//! The Fig. 9 workload: Bell-state preparation with a mid-circuit
//! measurement and feed-forward, compensated by CA-EC. Sweeping the
//! assumed idle window calibrates the controller's feed-forward
//! latency: the fidelity peaks at the true value.
//!
//! Run with: `cargo run --release --example dynamic_bell`

use context_aware_compiling::experiments::dynamic;
use context_aware_compiling::experiments::Budget;

fn main() {
    let budget = Budget {
        trajectories: 120,
        instances: 2,
        seed: 5,
    };
    let taus: Vec<f64> = (1..=12).map(|k| k as f64 * 700.0).collect();
    let fig = dynamic::fig9(&taus, &budget);
    fig.print();
    let device = dynamic::dynamic_device();
    println!();
    println!(
        "The peak sits at the true window {:.2} µs — this sweep is how the \
         paper calibrates the feed-forward time.",
        dynamic::true_tau_ns(&device) / 1000.0
    );
}

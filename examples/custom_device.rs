//! Building a device from scratch and inspecting what the
//! context-aware compiler does with it: crosstalk graph, joint idle
//! windows, Walsh coloring, and the CA-EC compensation report.
//!
//! Run with: `cargo run --release --example custom_device`

use context_aware_compiling::core::cadd::{collect_joint_delays, color_graph};
use context_aware_compiling::core::{ca_ec, pauli_twirl, CaEcConfig};
use context_aware_compiling::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 5-qubit line with a frequency-collision NNN term between
    // qubits 1 and 3 (mediated by 2).
    let topo = Topology::line(5);
    let mut cal = Calibration::uniform(5, &topo.edges, 70.0);
    cal.nnn.push(context_aware_compiling::device::NnnTerm {
        i: 1,
        j: 2,
        k: 3,
        zz_khz: 9.0,
    });
    cal.stark_khz.insert((0, 1), 22.0);
    let device = Device::new("custom", topo, cal);

    println!("device: {}", device.name);
    println!("crosstalk edges:");
    for e in &device.crosstalk.edges {
        println!("  ({}, {})  {:>6.1} kHz  {:?}", e.a, e.b, e.zz_khz, e.kind);
    }

    // A circuit with a gate and a joint idle region.
    let mut qc = Circuit::new(5, 0);
    qc.h(1).h(2).h(3);
    qc.barrier(Vec::<usize>::new());
    qc.ecr(0, 1);
    qc.delay(2000.0, 2).delay(2000.0, 3).delay(2000.0, 4);
    qc.barrier(Vec::<usize>::new());
    qc.h(1).h(2).h(3);

    let sc = schedule_asap(&qc, device.durations());
    let windows = collect_joint_delays(&sc, &device.crosstalk, 150.0);
    let coloring = color_graph(&windows, &device.crosstalk, &sc);
    println!();
    println!("CA-DD joint idle windows and Walsh colors:");
    for (w, colors) in windows.iter().zip(coloring.assignments.iter()) {
        println!(
            "  [{:>7.0}, {:>7.0}] ns  qubits {:?}  colors {:?}",
            w.t0, w.t1, w.qubits, colors
        );
    }

    let mut rng = StdRng::seed_from_u64(3);
    let (twirled, _) = pauli_twirl(&stratify(&qc), &mut rng);
    let (_, report) = ca_ec(&twirled, &device, CaEcConfig::default());
    println!();
    println!("CA-EC report: {report:?}");
    println!("  (absorbed = free γ-shifts, virtual_rz = free phase shifts,");
    println!("   inserted = explicit pulse-stretched Rzz compensations)");
}
